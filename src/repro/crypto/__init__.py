"""Cryptographic substrate, implemented from scratch.

* :mod:`repro.crypto.aes` — the FIPS-197 AES block cipher (128/192/256-bit
  keys), with a numpy-vectorized multi-block fast path,
* :mod:`repro.crypto.padding` — PKCS#7,
* :mod:`repro.crypto.modes` — ECB, CBC and CTR modes of operation,
* :mod:`repro.crypto.cipher` — :class:`AesCipher`, the authenticated
  (encrypt-then-MAC) symmetric cipher the Encrypted M-Index uses,
* :mod:`repro.crypto.keys` — :class:`SecretKey`, the paper's secret key:
  the pivot set plus the symmetric cipher key,
* :mod:`repro.crypto.ope` — order-preserving encryption, the primitive
  behind the MPT baseline of Yiu et al.

The AES implementation is validated against the official FIPS-197 /
NIST SP 800-38A test vectors in the test suite.
"""

from repro.crypto.aes import AesKey, decrypt_block, encrypt_block
from repro.crypto.cipher import AesCipher
from repro.crypto.keys import SecretKey
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_keystream,
    ctr_transform,
    ecb_decrypt,
    ecb_encrypt,
)
from repro.crypto.ope import OrderPreservingEncryption
from repro.crypto.padding import pkcs7_pad, pkcs7_unpad

__all__ = [
    "AesCipher",
    "AesKey",
    "OrderPreservingEncryption",
    "SecretKey",
    "cbc_decrypt",
    "cbc_encrypt",
    "ctr_keystream",
    "ctr_transform",
    "decrypt_block",
    "ecb_decrypt",
    "ecb_encrypt",
    "encrypt_block",
    "pkcs7_pad",
    "pkcs7_unpad",
]
