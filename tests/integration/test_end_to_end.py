"""End-to-end integration: the full encrypted system against brute force."""

import numpy as np
import pytest

from repro.core.client import Strategy
from repro.core.cloud import SimilarityCloud
from repro.crypto.keys import SecretKey
from repro.metric.distances import L1Distance, L2Distance
from repro.storage.disk import DiskStorage

from tests.conftest import brute_force_knn


class TestPreciseStrategyIsExact:
    """Precise range and k-NN must equal brute force, always."""

    def test_range_queries_many_radii(self, precise_cloud, small_data, rng):
        client = precise_cloud.new_client()
        for _ in range(10):
            q = rng.normal(size=12) * 2
            dists = np.abs(small_data - q).sum(axis=1)
            for percentile in (1, 10, 50):
                radius = float(np.percentile(dists, percentile))
                hits = client.range_search(q, radius)
                assert {h.oid for h in hits} == set(
                    np.nonzero(dists <= radius)[0]
                )

    def test_precise_knn_many_k(self, precise_cloud, small_data, rng):
        client = precise_cloud.new_client()
        for k in (1, 5, 30):
            q = rng.normal(size=12) * 2
            hits = client.knn_precise(q, k)
            assert [h.oid for h in hits] == brute_force_knn(small_data, q, k)

    def test_knn_larger_than_collection(self, small_data):
        cloud = SimilarityCloud.build(
            small_data[:20],
            distance=L1Distance(),
            n_pivots=4,
            bucket_capacity=10,
            strategy=Strategy.PRECISE,
            seed=1,
        )
        cloud.owner.outsource(range(20), small_data[:20])
        client = cloud.new_client()
        hits = client.knn_precise(np.zeros(12), 50)
        assert len(hits) == 20  # whole collection, ranked


class TestApproximateStrategyQuality:
    def test_recall_grows_and_saturates(self, approx_cloud, small_data, rng):
        client = approx_cloud.new_client()
        recalls = []
        queries = rng.normal(size=(10, 12)) * 2
        for cand_size in (30, 120, 600):
            total = 0.0
            for q in queries:
                truth = set(brute_force_knn(small_data, q, 10))
                hits = client.knn_search(q, 10, cand_size=cand_size)
                total += len({h.oid for h in hits} & truth) / 10
            recalls.append(total / len(queries) * 100)
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[2] == 100.0  # cand = collection size -> exact

    def test_key_serialization_roundtrip_preserves_access(
        self, approx_cloud, small_data, queries
    ):
        """A client restored from serialized key bytes must read the
        same index."""
        blob = approx_cloud.owner.authorize().to_bytes()
        restored_key = SecretKey.from_bytes(blob)
        restored_client = approx_cloud.new_client(secret_key=restored_key)
        original_client = approx_cloud.new_client()
        restored_hits = restored_client.knn_search(
            queries[0], 5, cand_size=200
        )
        original_hits = original_client.knn_search(
            queries[0], 5, cand_size=200
        )
        assert [h.oid for h in restored_hits] == [
            h.oid for h in original_hits
        ]
        assert len(restored_hits) == 5


class TestDiskBackedDeployment:
    def test_disk_storage_end_to_end(self, small_data, queries, tmp_path):
        cloud = SimilarityCloud.build(
            small_data,
            distance=L1Distance(),
            n_pivots=8,
            bucket_capacity=40,
            strategy=Strategy.PRECISE,
            storage=DiskStorage(tmp_path / "index"),
            seed=7,
        )
        cloud.owner.outsource(range(len(small_data)), small_data)
        client = cloud.new_client()
        q = queries[0]
        dists = np.abs(small_data - q).sum(axis=1)
        radius = float(np.sort(dists)[10])
        hits = client.range_search(q, radius)
        assert {h.oid for h in hits} == set(np.nonzero(dists <= radius)[0])
        assert cloud.server.storage.bytes_read > 0


class TestMultipleMetrics:
    @pytest.mark.parametrize("distance", [L1Distance(), L2Distance()])
    def test_precise_knn_under_both_metrics(self, small_data, rng, distance):
        cloud = SimilarityCloud.build(
            small_data,
            distance=distance,
            n_pivots=8,
            bucket_capacity=40,
            strategy=Strategy.PRECISE,
            seed=3,
        )
        cloud.owner.outsource(range(len(small_data)), small_data)
        client = cloud.new_client()
        q = rng.normal(size=12)
        hits = client.knn_precise(q, 5)
        true_dists = distance.batch(q, small_data)
        expected = list(
            np.lexsort((np.arange(len(small_data)), true_dists))[:5]
        )
        assert [h.oid for h in hits] == expected


class TestDynamicInserts:
    def test_search_after_incremental_inserts(self, small_data, rng):
        """The paper stresses the index is dynamic: inserts after
        construction must be searchable immediately."""
        cloud = SimilarityCloud.build(
            small_data,
            distance=L1Distance(),
            n_pivots=8,
            bucket_capacity=40,
            strategy=Strategy.PRECISE,
            seed=7,
        )
        cloud.owner.outsource(range(300), small_data[:300])
        client = cloud.new_client()
        # insert the rest through a regular authorized client
        client.insert_many(
            range(300, len(small_data)), small_data[300:], bulk_size=64
        )
        q = rng.normal(size=12)
        hits = client.knn_precise(q, 10)
        assert [h.oid for h in hits] == brute_force_knn(small_data, q, 10)
