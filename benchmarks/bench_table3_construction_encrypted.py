"""Table 3 — index construction of the Encrypted M-Index.

Reproduces the construction-phase cost breakdown (client / encryption /
distance / server / communication / overall time) for all three data
sets, with bulk inserts of 1,000 as in §5.2. CoPhIR uses disk storage
per Table 2.
"""

import pytest
from conftest import save_result

from repro.core.client import Strategy
from repro.evaluation.runner import run_encrypted_construction
from repro.evaluation.tables import format_construction_table
from repro.storage.disk import DiskStorage


@pytest.fixture(scope="module")
def construction_reports(yeast, human, cophir, tmp_path_factory):
    reports = {}
    for ds in (yeast, human, cophir):
        storage = None
        if ds.storage_type == "disk":
            storage = DiskStorage(
                tmp_path_factory.mktemp("mindex") / ds.name
            )
        cloud, report = run_encrypted_construction(
            ds,
            strategy=Strategy.APPROXIMATE,
            seed=0,
            bulk_size=1000,
            storage=storage,
        )
        assert len(cloud.server.index) == ds.n_records
        reports[ds.name] = report
    return reports


def test_table3_encrypted_construction(
    construction_reports, yeast, cophir, benchmark
):
    text = format_construction_table(
        "Table 3. Index construction of encrypted M-Index",
        construction_reports,
        encrypted=True,
    )
    save_result("table3_construction_encrypted", text)

    for name, report in construction_reports.items():
        # the encryption layer runs on the client; its sub-components
        # must be visible and sum below total client time
        assert report.encryption_time > 0
        assert report.distance_time > 0
        assert report.client_time >= report.encryption_time
        assert report.communication_bytes > 0

    # §5.2 shape: the encrypted variant relocates *all* distance
    # computation (n_records x n_pivots evaluations) to the client.
    # (The paper's further observation that this dominates the CoPhIR
    # total is specific to its Java metric implementation; with numpy-
    # vectorized metrics the crypto+distance client share is smaller —
    # see EXPERIMENTS.md.)
    cophir_report = construction_reports["CoPhIR"]
    assert cophir_report.extras["distance_computations"] == (
        cophir.n_records * cophir.n_pivots
    )
    assert (
        cophir_report.distance_time + cophir_report.encryption_time
        > 0.5 * cophir_report.client_time
    )
    assert cophir_report.distance_time > cophir_report.communication_time

    # benchmark: one encrypted bulk insert of 1,000 YEAST objects
    cloud, _ = run_encrypted_construction(yeast, seed=1)
    client = cloud.new_client()

    counter = iter(range(10_000_000, 20_000_000))

    def bulk_insert():
        oids = [next(counter) for _ in range(1000)]
        client.insert_many(oids, yeast.vectors[:1000], bulk_size=1000)

    benchmark(bulk_insert)
