"""Ablation — per-record insertion vs group-wise vs one-shot loading.

The paper's construction phase inserts in bulks of 1,000 through the
encryption client. Three index builders are compared: a per-record
``insert`` loop (one storage append per record, splits rewriting every
overflowing bucket), the group-wise ``bulk_insert`` (records lexsorted
by permutation prefix, one ``append_many`` write per touched cell,
splits resolved once per cell), and the one-shot ``bulk_load`` (top-down
array partitioning, every final cell written exactly once through
``save_many``). On a disk backend this is the difference between
O(n log n) and O(cells) bucket I/O.
"""

import numpy as np
import pytest
from conftest import save_result

from repro.core.records import IndexedRecord, vector_to_payload
from repro.evaluation.tables import format_matrix
from repro.metric.permutations import pivot_permutations
from repro.mindex.index import MIndex
from repro.storage.disk import DiskStorage
from repro.storage.memory import MemoryStorage


@pytest.fixture(scope="module")
def described_records(yeast):
    rng = np.random.default_rng(0)
    pivots = yeast.vectors[
        rng.choice(yeast.n_records, yeast.n_pivots, replace=False)
    ]
    matrix = np.stack(
        [yeast.distance.batch(p, yeast.vectors) for p in pivots]
    ).T
    perms = pivot_permutations(matrix)
    return [
        IndexedRecord(
            oid, perms[oid], None, vector_to_payload(yeast.vectors[oid])
        )
        for oid in range(yeast.n_records)
    ]


def test_ablation_bulk_load(described_records, yeast, tmp_path, benchmark):
    import time

    def insert_loop(index, records):
        for record in records:
            index.insert(record)

    builders = {
        "insert loop": insert_loop,
        "bulk_insert": lambda index, records: index.bulk_insert(records),
        "bulk_load": lambda index, records: index.bulk_load(records),
    }
    rows = []
    writes = {}
    for method, build in builders.items():
        for backend_name in ("memory", "disk"):
            if backend_name == "memory":
                storage = MemoryStorage()
            else:
                storage = DiskStorage(tmp_path / f"{method}-{backend_name}")
            index = MIndex(
                yeast.n_pivots, yeast.bucket_capacity, storage
            )
            start = time.perf_counter()
            build(index, described_records)
            elapsed = time.perf_counter() - start
            writes[(method, backend_name)] = storage.writes
            rows.append(
                (
                    f"{method} / {backend_name}",
                    [
                        f"{elapsed:.3f}",
                        str(storage.writes),
                        f"{storage.bytes_written / 1e6:.1f}",
                    ],
                )
            )
            assert len(index) == yeast.n_records
    text = format_matrix(
        "Ablation: per-record insert vs bulk insert vs bulk load "
        "(YEAST records)",
        ["build time [s]", "bucket writes", "MB written"],
        rows,
        row_header="Method / backend",
    )
    save_result("ablation_bulk_load", text)

    # group-wise routing and one-shot loading must both write far
    # fewer buckets than one append per record
    assert writes[("bulk_load", "disk")] < writes[("insert loop", "disk")] / 5
    assert (
        writes[("bulk_insert", "disk")] < writes[("insert loop", "disk")] / 5
    )
    # and bulk_load never rewrites a cell at all
    assert writes[("bulk_load", "disk")] <= writes[("bulk_insert", "disk")]

    # benchmark: bulk-loading the whole collection into memory
    def build():
        index = MIndex(
            yeast.n_pivots, yeast.bucket_capacity, MemoryStorage()
        )
        index.bulk_load(described_records)
        return index

    benchmark(build)
