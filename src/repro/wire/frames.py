"""Pipelined frame codec (framing v2) for the async network stack.

The legacy transport (:mod:`repro.net.channel`) frames every message as
a bare 4-byte little-endian payload length — one request in flight per
connection, responses strictly in order. The pipelined framing used by
:mod:`repro.net.aio` prepends a fixed 18-byte header instead::

    u32 magic            0xA110C0DE
    u8  kind             REQUEST / RESPONSE / ERROR
    u8  flags            bit 0 = LAST (final frame of its message)
    u64 correlation id   chosen by the client, echoed by the server
    u32 payload length   bytes that follow (<= MAX_PAYLOAD)

The correlation id is what lets one connection carry many in-flight
requests and receive their responses out of order; the LAST flag is
what lets a large response stream back as several chunk frames that the
client reassembles (:class:`FrameAssembler`). Requests always travel as
a single frame.

The magic number is deliberately larger than the legacy 1 GiB frame
bound, so a server peeking at the first 4 bytes of a connection can
tell the two framings apart and serve legacy clients unmodified.

Every decode error raises :class:`~repro.exceptions.ProtocolError`
immediately — garbage on the wire must fail fast, never hang a reader.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterator

from repro.exceptions import ProtocolError

__all__ = [
    "FRAME_MAGIC",
    "HEADER_SIZE",
    "MAX_PAYLOAD",
    "KIND_REQUEST",
    "KIND_RESPONSE",
    "KIND_ERROR",
    "FLAG_LAST",
    "FLAG_DEADLINE",
    "FrameHeader",
    "FrameAssembler",
    "encode_frame",
    "encode_request_frame",
    "split_deadline",
    "response_frames",
]

_HEADER = struct.Struct("<IBBQI")

#: first four bytes of every v2 frame; above the legacy frame-size
#: bound, so it can never be mistaken for a legacy length prefix
FRAME_MAGIC = 0xA110C0DE

#: encoded size of a frame header
HEADER_SIZE = _HEADER.size

#: largest payload a single frame may carry (matches the legacy bound)
MAX_PAYLOAD = 1 << 30

KIND_REQUEST = 0
KIND_RESPONSE = 1
KIND_ERROR = 2

_KINDS = (KIND_REQUEST, KIND_RESPONSE, KIND_ERROR)

#: final frame of its message (set on every request and error frame,
#: and on the last chunk of a streamed response)
FLAG_LAST = 0x01

#: request carries a deadline: the first 8 payload bytes are a
#: little-endian float64 time *budget* in seconds (relative, so client
#: and server clocks never need to agree); the RPC body follows. The
#: server sheds the request unexecuted once the budget expires.
FLAG_DEADLINE = 0x02

_KNOWN_FLAGS = FLAG_LAST | FLAG_DEADLINE

_DEADLINE = struct.Struct("<d")


@dataclass(frozen=True)
class FrameHeader:
    """Decoded v2 frame header."""

    kind: int
    flags: int
    correlation_id: int
    length: int

    @property
    def is_last(self) -> bool:
        """Whether this frame completes its message."""
        return bool(self.flags & FLAG_LAST)

    def encode(self) -> bytes:
        """The 18-byte wire form (validates every field)."""
        if self.kind not in _KINDS:
            raise ProtocolError(f"unknown frame kind {self.kind}")
        if self.flags & ~_KNOWN_FLAGS:
            raise ProtocolError(f"unknown frame flags 0x{self.flags:02x}")
        if not 0 <= self.correlation_id <= 0xFFFFFFFFFFFFFFFF:
            raise ProtocolError(
                f"correlation id out of range: {self.correlation_id}"
            )
        if not 0 <= self.length <= MAX_PAYLOAD:
            raise ProtocolError(
                f"frame payload of {self.length} bytes exceeds the "
                f"{MAX_PAYLOAD}-byte limit"
            )
        return _HEADER.pack(
            FRAME_MAGIC, self.kind, self.flags, self.correlation_id,
            self.length,
        )

    @classmethod
    def decode(cls, data: bytes) -> "FrameHeader":
        """Decode and validate an 18-byte header."""
        if len(data) != HEADER_SIZE:
            raise ProtocolError(
                f"frame header truncated: expected {HEADER_SIZE} bytes, "
                f"got {len(data)}"
            )
        magic, kind, flags, correlation_id, length = _HEADER.unpack(data)
        if magic != FRAME_MAGIC:
            raise ProtocolError(
                f"bad frame magic 0x{magic:08x} "
                f"(expected 0x{FRAME_MAGIC:08x})"
            )
        if kind not in _KINDS:
            raise ProtocolError(f"unknown frame kind {kind}")
        if flags & ~_KNOWN_FLAGS:
            raise ProtocolError(f"unknown frame flags 0x{flags:02x}")
        if length > MAX_PAYLOAD:
            raise ProtocolError(
                f"frame payload of {length} bytes exceeds the "
                f"{MAX_PAYLOAD}-byte limit"
            )
        return cls(kind, flags, correlation_id, length)


def encode_frame(
    kind: int, correlation_id: int, payload: bytes, *, flags: int = FLAG_LAST
) -> bytes:
    """One complete frame: validated header followed by ``payload``."""
    header = FrameHeader(kind, flags, correlation_id, len(payload))
    return header.encode() + payload


def encode_request_frame(
    correlation_id: int, payload: bytes, *, deadline: float | None = None
) -> bytes:
    """One request frame, optionally carrying a deadline budget.

    ``deadline`` is the remaining time budget in seconds; it travels as
    the first 8 payload bytes under :data:`FLAG_DEADLINE`. ``None``
    yields a plain request frame, bit-identical to the pre-deadline
    wire format.
    """
    if deadline is None:
        return encode_frame(KIND_REQUEST, correlation_id, payload)
    if not deadline > 0 or deadline != deadline or deadline == float("inf"):
        raise ProtocolError(
            f"deadline budget must be a positive finite number of "
            f"seconds, got {deadline}"
        )
    return encode_frame(
        KIND_REQUEST,
        correlation_id,
        _DEADLINE.pack(deadline) + payload,
        flags=FLAG_LAST | FLAG_DEADLINE,
    )


def split_deadline(
    header: FrameHeader, payload: bytes
) -> tuple[float | None, bytes]:
    """Separate a request frame's deadline budget from its RPC body.

    Returns ``(budget_seconds, body)``; the budget is ``None`` when the
    frame carries no :data:`FLAG_DEADLINE`. A flagged frame too short
    to hold the budget, or one carrying a non-positive or non-finite
    budget, is a protocol violation.
    """
    if not header.flags & FLAG_DEADLINE:
        return None, payload
    if len(payload) < _DEADLINE.size:
        raise ProtocolError(
            f"deadline-flagged frame of {len(payload)} bytes cannot "
            f"hold an {_DEADLINE.size}-byte budget"
        )
    (budget,) = _DEADLINE.unpack_from(payload)
    if not budget > 0 or budget != budget or budget == float("inf"):
        raise ProtocolError(
            f"deadline budget must be a positive finite number of "
            f"seconds, got {budget}"
        )
    return budget, payload[_DEADLINE.size :]


def response_frames(
    correlation_id: int, payload: bytes, chunk_size: int
) -> Iterator[bytes]:
    """Frame a response, chunking payloads larger than ``chunk_size``.

    Yields one RESPONSE frame per chunk; only the final frame carries
    the LAST flag. An empty payload still yields one (empty, LAST)
    frame so the client's future always resolves.
    """
    if chunk_size <= 0:
        raise ProtocolError(f"chunk_size must be positive, got {chunk_size}")
    if len(payload) <= chunk_size:
        yield encode_frame(KIND_RESPONSE, correlation_id, payload)
        return
    for start in range(0, len(payload), chunk_size):
        chunk = payload[start : start + chunk_size]
        last = start + chunk_size >= len(payload)
        yield encode_frame(
            KIND_RESPONSE,
            correlation_id,
            chunk,
            flags=FLAG_LAST if last else 0,
        )


class FrameAssembler:
    """Reassembles chunked responses, one message per correlation id.

    Feed every received (header, payload) pair to :meth:`add`; it
    returns the complete message once the LAST-flagged frame of that
    correlation id arrives, and ``None`` while chunks are still
    outstanding. Reassembly is bounded by :data:`MAX_PAYLOAD` so a
    malicious peer cannot grow memory without limit.
    """

    def __init__(self) -> None:
        self._partial: dict[int, list[bytes]] = {}

    def add(self, header: FrameHeader, payload: bytes) -> bytes | None:
        """Absorb one frame; returns the full message when complete."""
        if len(payload) != header.length:
            raise ProtocolError(
                f"frame payload truncated: expected {header.length} "
                f"bytes, got {len(payload)}"
            )
        chunks = self._partial.setdefault(header.correlation_id, [])
        chunks.append(payload)
        if sum(len(c) for c in chunks) > MAX_PAYLOAD:
            del self._partial[header.correlation_id]
            raise ProtocolError(
                f"reassembled message exceeds the {MAX_PAYLOAD}-byte limit"
            )
        if not header.is_last:
            return None
        del self._partial[header.correlation_id]
        return b"".join(chunks)

    def pending(self) -> int:
        """Number of messages with outstanding chunks."""
        return len(self._partial)
