"""Table 5 — approximate 30-NN on YEAST, Encrypted M-Index.

The paper's CandSize sweep {150, 300, 600, 1500} with 100 random
queries, reporting per-query averages of every cost component, recall
and communication cost. Shape targets: recall > 90% at |S_C| = 600
(~20% of the collection) and communication cost linear in CandSize.
"""

import pytest
from conftest import N_QUERIES_SMALL, YEAST_CAND_SIZES, save_result

from repro.core.client import Strategy
from repro.evaluation.runner import (
    run_encrypted_construction,
    run_encrypted_search_sweep,
)
from repro.evaluation.tables import format_search_table


@pytest.fixture(scope="module")
def sweep_rows(yeast):
    cloud, _ = run_encrypted_construction(
        yeast, strategy=Strategy.APPROXIMATE, seed=0
    )
    client = cloud.new_client()
    rows = run_encrypted_search_sweep(
        client,
        yeast,
        k=30,
        cand_sizes=YEAST_CAND_SIZES,
        n_queries=N_QUERIES_SMALL,
    )
    return cloud, rows


def test_table5_yeast_encrypted_search(sweep_rows, yeast, benchmark):
    cloud, rows = sweep_rows
    text = format_search_table(
        "Table 5. Approximate 30-NN evaluation using the Encrypted "
        "M-Index (YEAST)",
        rows,
    )
    save_result("table5_search_yeast_encrypted", text)

    recalls = [row.recall for row in rows]
    assert recalls == sorted(recalls)
    at_600 = next(row for row in rows if row.cand_size == 600)
    assert at_600.recall > 90.0  # paper: 91.3% at |S_C| = 600

    costs = [row.report.communication_bytes for row in rows]
    for i in range(len(rows) - 1):
        expected = rows[i + 1].cand_size / rows[i].cand_size
        assert costs[i + 1] / costs[i] == pytest.approx(expected, rel=0.2)

    # benchmark: one approximate 30-NN query at CandSize 600
    client = cloud.new_client()
    query = yeast.queries[0]
    benchmark(lambda: client.knn_search(query, 30, cand_size=600))
