"""Ablation — precise vs approximate evaluation strategies (paper §6).

The paper's first named piece of future work: "analyze the precise
range and k-NN evaluation strategies of Encrypted M-Index in
comparison to the approximate strategy". This bench runs the same
30-NN workload three ways on the same collection:

* approximate k-NN at several candidate budgets (what §5.3 measured),
* precise k-NN (approximate pass + confirming range query),
* and reports cost vs guarantee: the precise strategy buys recall=100%
  at the price of a second round trip and a candidate set sized by the
  true rho_k ball rather than a fixed budget.
"""

import numpy as np
import pytest
from conftest import N_QUERIES_SMALL, save_result

from repro.core.client import Strategy
from repro.evaluation.metrics import exact_knn, recall
from repro.evaluation.runner import run_encrypted_construction
from repro.evaluation.tables import format_matrix


@pytest.fixture(scope="module")
def precise_cloud(yeast):
    cloud, _ = run_encrypted_construction(
        yeast, strategy=Strategy.PRECISE, seed=0
    )
    return cloud


def test_ablation_precise_vs_approximate(precise_cloud, yeast, benchmark):
    n_queries = min(N_QUERIES_SMALL, 50)
    queries = yeast.queries[:n_queries]
    truth = [
        exact_knn(yeast.distance, yeast.vectors, q, 30) for q in queries
    ]
    rows = []

    # approximate at three budgets
    approx_stats = {}
    for cand_size in (150, 600, 1500):
        client = precise_cloud.new_client()
        client.reset_accounting()
        recalls = [
            recall(
                [h.oid for h in client.knn_search(q, 30, cand_size=cand_size)],
                t,
            )
            for q, t in zip(queries, truth)
        ]
        report = client.report().scaled(n_queries)
        approx_stats[cand_size] = (float(np.mean(recalls)), report)
        rows.append(
            (
                f"approx, CandSize={cand_size}",
                [
                    f"{np.mean(recalls):.1f}",
                    f"{report.overall_time * 1e3:.2f}",
                    f"{report.communication_kb:.1f}",
                    "1",
                ],
            )
        )

    # precise k-NN: guaranteed exact
    client = precise_cloud.new_client()
    client.reset_accounting()
    precise_recalls = [
        recall([h.oid for h in client.knn_precise(q, 30)], t)
        for q, t in zip(queries, truth)
    ]
    precise_report = client.report().scaled(n_queries)
    rows.append(
        (
            "precise (rho_k + range)",
            [
                f"{np.mean(precise_recalls):.1f}",
                f"{precise_report.overall_time * 1e3:.2f}",
                f"{precise_report.communication_kb:.1f}",
                "2",
            ],
        )
    )
    text = format_matrix(
        "Ablation (paper §6 future work): precise vs approximate 30-NN "
        "(YEAST, per query)",
        ["recall [%]", "overall [ms]", "comm [kB]", "round trips"],
        rows,
        row_header="Strategy",
    )
    save_result("ablation_precise_vs_approx", text)

    # the precise strategy is exact, always
    assert float(np.mean(precise_recalls)) == 100.0
    # and costs more than a small-budget approximate query, but not
    # orders of magnitude more than the large-budget one
    small_recall, small_report = approx_stats[150]
    big_recall, big_report = approx_stats[1500]
    assert precise_report.overall_time > small_report.overall_time
    assert precise_report.overall_time < 20 * big_report.overall_time

    # benchmark: one precise 30-NN query
    query = yeast.queries[0]
    bench_client = precise_cloud.new_client()
    benchmark(lambda: bench_client.knn_precise(query, 30))
