"""Network substrate: clocks, channels, and a minimal RPC layer.

The paper runs a Java client and server over loopback TCP and reports
per-component times. We reproduce the setting twice:

* :class:`InProcessChannel` — deterministic simulation. The request and
  response travel through a latency + bandwidth cost model, so the
  "communication time" rows of the tables are reproducible bit-for-bit.
* :class:`TcpChannel` / :class:`TcpServer` — real sockets over loopback,
  for honest wall-clock runs (used by the TCP integration tests and an
  example).

Both channels account bytes exactly; the RPC envelope carries the
server-side processing time so the client can split "round trip" into
server time and communication time, as the paper's tables do.
"""

from repro.net.channel import Channel, InProcessChannel, TcpChannel, TcpServer
from repro.net.clock import Clock, SimulatedClock, WallClock
from repro.net.rpc import RpcClient, RpcDispatcher

__all__ = [
    "Channel",
    "Clock",
    "InProcessChannel",
    "RpcClient",
    "RpcDispatcher",
    "SimulatedClock",
    "TcpChannel",
    "TcpServer",
    "WallClock",
]
