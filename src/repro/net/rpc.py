"""Minimal RPC layer over a :class:`~repro.net.channel.Channel`.

Request envelope:  ``string method | blob body``
Response envelope: ``u8 status | f64 server_time | blob body-or-error``

``server_time`` is the handler's processing time measured by the
dispatcher; the client uses it to split round-trip time into the
"server time" and "communication time" rows of the paper's tables.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ProtocolError, ReproError
from repro.net.channel import Channel, TcpChannel
from repro.net.clock import Clock, WallClock
from repro.wire.encoding import Reader, Writer

__all__ = ["RpcDispatcher", "RpcClient"]

_STATUS_OK = 0
_STATUS_ERROR = 1

Handler = Callable[[Reader], Writer]


class RpcDispatcher:
    """Server-side method table with per-call time accounting.

    Handlers receive a :class:`Reader` positioned at the request body and
    return a :class:`Writer` with the response body. Exceptions derived
    from :class:`ReproError` travel back to the client as error
    responses; anything else is a bug and propagates.
    """

    def __init__(self, *, clock: Clock | None = None) -> None:
        self._handlers: dict[str, Handler] = {}
        self._clock: Clock = clock or WallClock()
        self.server_time = 0.0
        self.calls = 0

    def register(self, method: str, handler: Handler) -> None:
        """Expose ``handler`` under ``method``."""
        if method in self._handlers:
            raise ProtocolError(f"method {method!r} already registered")
        self._handlers[method] = handler

    def handle(self, request: bytes) -> bytes:
        """Entry point given to a channel: decode, dispatch, encode.

        A malformed envelope (truncated frame, bad UTF-8 method name)
        yields an error *response* rather than an exception — a remote
        peer must never be able to crash the server loop with garbage.
        """
        try:
            reader = Reader(request)
            method = reader.string()
            body = Reader(reader.blob())
        except ProtocolError as exc:
            response = Writer()
            response.u8(_STATUS_ERROR).f64(0.0).string(
                f"malformed request envelope: {exc}"
            )
            return response.getvalue()
        handler = self._handlers.get(method)
        response = Writer()
        if handler is None:
            response.u8(_STATUS_ERROR).f64(0.0).string(
                f"unknown method {method!r}"
            )
            return response.getvalue()
        start = self._clock.now()
        try:
            result = handler(body)
        except ReproError as exc:
            elapsed = self._clock.now() - start
            self.server_time += elapsed
            self.calls += 1
            response.u8(_STATUS_ERROR).f64(elapsed).string(
                f"{type(exc).__name__}: {exc}"
            )
            return response.getvalue()
        elapsed = self._clock.now() - start
        self.server_time += elapsed
        self.calls += 1
        response.u8(_STATUS_OK).f64(elapsed).blob(result.getvalue())
        return response.getvalue()

    def reset_accounting(self) -> None:
        """Zero the server-side time counters."""
        self.server_time = 0.0
        self.calls = 0


class RpcClient:
    """Client-side caller: frames requests, decodes envelopes.

    Accumulates the ``server_time`` reported by the dispatcher so the
    experiment harness can read both sides from the client alone.
    """

    def __init__(self, channel: Channel) -> None:
        self.channel = channel
        self.server_time = 0.0
        self.calls = 0

    def call(self, method: str, body: Writer | bytes = b"") -> Reader:
        """Invoke ``method`` with ``body``; returns a Reader on the
        response body. Server-side errors raise :class:`ProtocolError`."""
        payload = body.getvalue() if isinstance(body, Writer) else bytes(body)
        request = Writer().string(method).blob(payload).getvalue()
        raw = self.channel.request(request)
        reader = Reader(raw)
        status = reader.u8()
        server_time = reader.f64()
        self.server_time += server_time
        self.calls += 1
        if isinstance(self.channel, TcpChannel):
            self.channel.note_server_time(server_time)
        if status == _STATUS_ERROR:
            raise ProtocolError(f"server error: {reader.string()}")
        if status != _STATUS_OK:
            raise ProtocolError(f"invalid response status {status}")
        return Reader(reader.blob())

    def reset_accounting(self) -> None:
        """Zero the client's view of server time and the channel counters."""
        self.server_time = 0.0
        self.calls = 0
        self.channel.reset_accounting()
