"""Deterministic fault-injection proxy for the chaos harness.

:class:`FaultProxy` sits between a client and a server as a plain TCP
forwarder, but it understands the pipelined framing
(:mod:`repro.wire.frames`): every REQUEST frame that passes through
increments one global counter, and a :class:`FaultSchedule` maps
request indices to scripted :class:`Fault` actions. The same schedule
against the same (single-threaded) workload therefore injects exactly
the same faults at exactly the same requests, run after run — which is
what lets the chaos suite assert *bit-identical* results instead of
"it eventually worked".

Scripted actions:

``drop``
    Swallow the request frame. Nothing reaches the server; the client
    observes silence until its deadline/timeout fires.
``delay``
    Hold the request frame for ``seconds`` before forwarding — the
    server-side deadline shed path under queueing delay.
``reset``
    Close both sides of the connection immediately, before the request
    is forwarded. In-flight requests fail with a typed
    :class:`~repro.exceptions.ChannelError`; the server never sees
    this request.
``truncate``
    Forward only the first ``keep_bytes`` bytes of the request frame,
    then close both sides — a request that dies mid-wire.
``truncate_response``
    Forward the request intact, but cut its *response* off after
    ``keep_bytes`` bytes and close both sides. The server **did**
    execute the request; only the acknowledgement is lost. This is the
    fault that distinguishes at-most-once from exactly-once: a naive
    retry of a mutation would double-apply it.
``slow``
    Deliver the response only after ``seconds`` — a slow read that a
    patient client rides out.

Connections whose first bytes are not the v2 magic (legacy framing)
are pumped verbatim without fault injection.

:meth:`FaultProxy.retarget` repoints *future* upstream connections at
a new server address, which is how the chaos suite models a server
restart: kill the server, start a new one on a fresh port, retarget —
existing upstream pipes die (clients see connection loss and retry),
and the retries land on the new server through the unchanged proxy
address.
"""

from __future__ import annotations

import socket
import threading
import time
from dataclasses import dataclass

from repro.exceptions import ChannelError, ProtocolError
from repro.wire.frames import (
    FRAME_MAGIC,
    HEADER_SIZE,
    KIND_REQUEST,
    FrameHeader,
)

__all__ = ["Fault", "FaultSchedule", "FaultProxy"]

ACTIONS = (
    "drop",
    "delay",
    "reset",
    "truncate",
    "truncate_response",
    "slow",
)


@dataclass(frozen=True)
class Fault:
    """One scripted action against one request (by global index)."""

    action: str
    seconds: float = 0.0
    keep_bytes: int = 8

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ProtocolError(
                f"unknown fault action {self.action!r}; choose from "
                f"{', '.join(ACTIONS)}"
            )
        if self.seconds < 0:
            raise ProtocolError(f"seconds must be >= 0, got {self.seconds}")
        if self.keep_bytes < 0:
            raise ProtocolError(
                f"keep_bytes must be >= 0, got {self.keep_bytes}"
            )

    @classmethod
    def drop(cls) -> "Fault":
        """Swallow the request frame."""
        return cls("drop")

    @classmethod
    def delay(cls, seconds: float) -> "Fault":
        """Hold the request for ``seconds`` before forwarding."""
        return cls("delay", seconds=seconds)

    @classmethod
    def reset(cls) -> "Fault":
        """Kill the connection before the request is forwarded."""
        return cls("reset")

    @classmethod
    def truncate(cls, keep_bytes: int = 8) -> "Fault":
        """Forward a partial request frame, then kill the connection."""
        return cls("truncate", keep_bytes=keep_bytes)

    @classmethod
    def truncate_response(cls, keep_bytes: int = 8) -> "Fault":
        """Execute the request but lose its acknowledgement mid-frame."""
        return cls("truncate_response", keep_bytes=keep_bytes)

    @classmethod
    def slow(cls, seconds: float) -> "Fault":
        """Deliver the response only after ``seconds``."""
        return cls("slow", seconds=seconds)


class FaultSchedule:
    """Maps global request indices (0-based) to scripted faults."""

    def __init__(self, faults: dict[int, Fault] | None = None) -> None:
        self._faults = dict(faults or {})
        for index in self._faults:
            if index < 0:
                raise ProtocolError(
                    f"request index must be >= 0, got {index}"
                )

    def get(self, index: int) -> Fault | None:
        """The fault scripted for request ``index``, if any."""
        return self._faults.get(index)

    def __len__(self) -> int:
        return len(self._faults)


class _Pipe:
    """One proxied connection: client socket, upstream socket, pumps."""

    def __init__(
        self,
        proxy: "FaultProxy",
        client: socket.socket,
        upstream: socket.socket,
    ) -> None:
        self.proxy = proxy
        self.client = client
        self.upstream = upstream
        self._lock = threading.Lock()
        self._dead = False
        #: correlation id -> fault to apply to that request's response
        self.response_faults: dict[int, Fault] = {}

    def kill(self) -> None:
        """Close both sockets (idempotent)."""
        with self._lock:
            if self._dead:
                return
            self._dead = True
        for sock in (self.client, self.upstream):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass


class FaultProxy:
    """Frame-aware TCP proxy injecting a deterministic fault schedule.

    Parameters
    ----------
    target_host, target_port:
        Upstream server address (changeable via :meth:`retarget`).
    schedule:
        The scripted faults; ``None`` forwards everything untouched.
    host, port:
        Listen address (port 0 picks a free port; read :attr:`port`).

    Counters (read after the workload for exact accounting):
    :attr:`requests_seen` — REQUEST frames observed;
    :attr:`faults_injected` — per-action counts of faults applied.
    """

    def __init__(
        self,
        target_host: str,
        target_port: int,
        *,
        schedule: FaultSchedule | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.schedule = schedule if schedule is not None else FaultSchedule()
        self._target = (target_host, target_port)
        self._lock = threading.Lock()
        self._pipes: set[_Pipe] = set()
        self._closed = False
        self.requests_seen = 0
        self.faults_injected: dict[str, int] = {a: 0 for a in ACTIONS}
        try:
            self._listener = socket.create_server(
                (host, port), reuse_port=False
            )
        except OSError as exc:
            raise ChannelError(
                f"cannot bind fault proxy to {host}:{port}: {exc}"
            ) from exc
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="fault-proxy-accept", daemon=True
        )
        self._accept_thread.start()

    @property
    def host(self) -> str:
        """Bound listen host."""
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        """Bound listen port."""
        return self._listener.getsockname()[1]

    def retarget(self, target_host: str, target_port: int) -> None:
        """Point *future* upstream connections at a new server address.

        Existing pipes are killed so clients notice the "restart" and
        reconnect (through the proxy's unchanged address).
        """
        with self._lock:
            self._target = (target_host, target_port)
            pipes = list(self._pipes)
        for pipe in pipes:
            pipe.kill()

    def close(self) -> None:
        """Stop accepting and kill every live pipe."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pipes = list(self._pipes)
        # shutdown() (not just close()) is what actually wakes a thread
        # blocked in accept() on Linux
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._listener.close()
        except OSError:
            pass
        for pipe in pipes:
            pipe.kill()
        self._accept_thread.join(5)

    def __enter__(self) -> "FaultProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- internals ---------------------------------------------------------

    def _accept_loop(self) -> None:
        while True:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return  # listener closed
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            with self._lock:
                target = self._target
                closed = self._closed
            if closed:
                client.close()
                return
            try:
                upstream = socket.create_connection(target, timeout=10)
                upstream.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
            except OSError:
                client.close()  # server down: the client sees a reset
                continue
            pipe = _Pipe(self, client, upstream)
            with self._lock:
                self._pipes.add(pipe)
            threading.Thread(
                target=self._pump_requests, args=(pipe,),
                name="fault-proxy-c2s", daemon=True,
            ).start()
            threading.Thread(
                target=self._pump_responses, args=(pipe,),
                name="fault-proxy-s2c", daemon=True,
            ).start()

    def _finish(self, pipe: _Pipe) -> None:
        pipe.kill()
        with self._lock:
            self._pipes.discard(pipe)

    def _count(self, action: str) -> None:
        with self._lock:
            self.faults_injected[action] += 1

    def _pump_requests(self, pipe: _Pipe) -> None:
        """client -> server: parse request frames, apply faults."""
        try:
            buffer = bytearray()
            framed: bool | None = None  # unknown until 4 bytes arrive
            while True:
                if framed is None and len(buffer) >= 4:
                    word = int.from_bytes(buffer[:4], "little")
                    framed = word == FRAME_MAGIC
                    if not framed:
                        # legacy framing: blind pass-through from here on
                        pipe.upstream.sendall(bytes(buffer))
                        buffer.clear()
                if framed is False:
                    chunk = pipe.client.recv(1 << 16)
                    if not chunk:
                        return
                    pipe.upstream.sendall(chunk)
                    continue
                if framed and len(buffer) >= HEADER_SIZE:
                    header = FrameHeader.decode(bytes(buffer[:HEADER_SIZE]))
                    total = HEADER_SIZE + header.length
                    if len(buffer) >= total:
                        frame = bytes(buffer[:total])
                        del buffer[:total]
                        if not self._forward_request(pipe, header, frame):
                            return
                        continue
                chunk = pipe.client.recv(1 << 16)
                if not chunk:
                    return
                buffer += chunk
        except (OSError, ProtocolError):
            pass  # torn-down pipe or mid-kill garbage: just stop
        finally:
            self._finish(pipe)

    def _forward_request(
        self, pipe: _Pipe, header: FrameHeader, frame: bytes
    ) -> bool:
        """Apply the scripted fault to one request frame.

        Returns False when the pump must stop (connection killed).
        """
        fault: Fault | None = None
        if header.kind == KIND_REQUEST:
            with self._lock:
                index = self.requests_seen
                self.requests_seen += 1
            fault = self.schedule.get(index)
        if fault is None:
            pipe.upstream.sendall(frame)
            return True
        self._count(fault.action)
        if fault.action == "drop":
            return True
        if fault.action == "delay":
            time.sleep(fault.seconds)
            pipe.upstream.sendall(frame)
            return True
        if fault.action == "reset":
            pipe.kill()
            return False
        if fault.action == "truncate":
            try:
                pipe.upstream.sendall(frame[: fault.keep_bytes])
            except OSError:
                pass
            pipe.kill()
            return False
        # response-side faults: forward intact, mark the correlation id
        pipe.response_faults[header.correlation_id] = fault
        pipe.upstream.sendall(frame)
        return True

    def _pump_responses(self, pipe: _Pipe) -> None:
        """server -> client: parse response frames, apply marked faults."""
        try:
            buffer = bytearray()
            framed: bool | None = None
            while True:
                if framed is None and len(buffer) >= 4:
                    word = int.from_bytes(buffer[:4], "little")
                    framed = word == FRAME_MAGIC
                    if not framed:
                        pipe.client.sendall(bytes(buffer))
                        buffer.clear()
                if framed is False:
                    chunk = pipe.upstream.recv(1 << 16)
                    if not chunk:
                        return
                    pipe.client.sendall(chunk)
                    continue
                if framed and len(buffer) >= HEADER_SIZE:
                    header = FrameHeader.decode(bytes(buffer[:HEADER_SIZE]))
                    total = HEADER_SIZE + header.length
                    if len(buffer) >= total:
                        frame = bytes(buffer[:total])
                        del buffer[:total]
                        if not self._forward_response(pipe, header, frame):
                            return
                        continue
                chunk = pipe.upstream.recv(1 << 16)
                if not chunk:
                    return
                buffer += chunk
        except (OSError, ProtocolError):
            pass
        finally:
            self._finish(pipe)

    def _forward_response(
        self, pipe: _Pipe, header: FrameHeader, frame: bytes
    ) -> bool:
        """Deliver one response frame, honouring response-side faults."""
        fault = pipe.response_faults.pop(header.correlation_id, None)
        if fault is None:
            pipe.client.sendall(frame)
            return True
        if fault.action == "slow":
            time.sleep(fault.seconds)
            pipe.client.sendall(frame)
            return True
        # truncate_response: the ack dies mid-frame, connection with it
        try:
            pipe.client.sendall(frame[: fault.keep_bytes])
        except OSError:
            pass
        pipe.kill()
        return False
