"""Pivot permutations (§4.1 of the paper) and rank-correlation measures.

For an object ``o`` and pivots ``p_1 .. p_n``, the pivot permutation is
the sequence of pivot *indices* ordered by increasing distance to ``o``,
with ties broken by pivot index — exactly the paper's definition:

    ``(i)_o < (j)_o  <=>  d(p_(i)o, o) < d(p_(j)o, o)
                          or (equal and (i)o's index smaller)``

Permutations are represented as ``int32`` numpy arrays where
``perm[rank] = pivot_index``. The *inverse* permutation maps
``pivot_index -> rank`` and is what the rank-correlation measures and the
M-Index cell-promise computation consume.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import PivotError
from repro.parallel import backend

__all__ = [
    "pivot_permutation",
    "pivot_permutations",
    "permutation_prefix",
    "inverse_permutation",
    "spearman_footrule",
    "spearman_rho",
    "kendall_tau",
    "prefix_promise",
]


def pivot_permutation(distances: np.ndarray) -> np.ndarray:
    """Permutation of pivot indices ordered by increasing distance.

    ``distances[i]`` is ``d(o, p_i)``. Ties are broken by pivot index;
    numpy's stable sort provides exactly that ordering.
    """
    d = np.asarray(distances, dtype=np.float64)
    if d.ndim != 1 or d.shape[0] == 0:
        raise PivotError(f"expected non-empty 1-D distances, got {d.shape}")
    return np.argsort(d, kind="stable").astype(np.int32)


def pivot_permutations(distance_matrix: np.ndarray) -> np.ndarray:
    """Row-wise pivot permutations for a ``(n_objects, n_pivots)`` matrix.

    The server's ``insert_bulk`` path derives all permutations of a
    batch through this one call. The stable argsort is independent per
    row, so with ``REPRO_KERNEL_WORKERS > 1`` the matrix splits into
    row blocks on the kernel scheduler with a bit-identical result.
    """
    m = np.asarray(distance_matrix, dtype=np.float64)
    if m.ndim != 2 or m.shape[1] == 0:
        raise PivotError(f"expected a 2-D distance matrix, got {m.shape}")
    if backend.kernel_workers() > 1:
        out = np.empty(m.shape, dtype=np.int32)

        def compute(start: int, stop: int) -> np.ndarray:
            return np.argsort(
                m[start:stop], axis=1, kind="stable"
            ).astype(np.int32)

        def write(start: int, stop: int, result: np.ndarray) -> None:
            out[start:stop] = result

        if backend.parallel_slices("permutation", m.shape[0], compute, write):
            return out
    return np.argsort(m, axis=1, kind="stable").astype(np.int32)


def permutation_prefix(permutation: np.ndarray, length: int) -> tuple[int, ...]:
    """First ``length`` entries of a permutation, as a hashable tuple.

    The M-Index uses these prefixes as Voronoi-cell identifiers.
    """
    perm = np.asarray(permutation)
    if length <= 0 or length > perm.shape[0]:
        raise PivotError(
            f"prefix length {length} out of range for permutation of "
            f"size {perm.shape[0]}"
        )
    return tuple(int(x) for x in perm[:length])


def inverse_permutation(permutation: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``inv[pivot_index] = rank``."""
    perm = np.asarray(permutation, dtype=np.int64)
    _validate(perm)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return inv.astype(np.int32)


def spearman_footrule(a: np.ndarray, b: np.ndarray) -> int:
    """Spearman footrule: total displacement between two permutations."""
    inv_a, inv_b = _inverses(a, b)
    return int(np.abs(inv_a - inv_b).sum())


def spearman_rho(a: np.ndarray, b: np.ndarray) -> float:
    """Spearman rho distance: L2 norm of rank displacements."""
    inv_a, inv_b = _inverses(a, b)
    diff = (inv_a - inv_b).astype(np.float64)
    return float(np.sqrt(np.dot(diff, diff)))


def kendall_tau(a: np.ndarray, b: np.ndarray) -> int:
    """Kendall tau distance: number of discordant pairs (O(n^2) exact)."""
    inv_a, inv_b = _inverses(a, b)
    n = inv_a.shape[0]
    discordant = 0
    for i in range(n):
        for j in range(i + 1, n):
            if (inv_a[i] - inv_a[j]) * (inv_b[i] - inv_b[j]) < 0:
                discordant += 1
    return discordant


def prefix_promise(
    query_ranks: np.ndarray, prefix: tuple[int, ...], *, level_decay: float = 0.75
) -> float:
    """Promise value of a Voronoi cell for a query (lower = more promising).

    The M-Index approximate search visits cells ordered by a heuristic
    "promise". We score a cell whose identifier is the pivot-index tuple
    ``prefix`` by a damped generalized footrule against the query's
    permutation: the rank the query assigns to the cell's level-``l``
    pivot, discounted by ``level_decay**l`` so that the first-level pivot
    dominates (it defines the Voronoi cell) and deeper levels refine.

    Parameters
    ----------
    query_ranks:
        Inverse permutation of the query (``query_ranks[pivot] = rank``).
    prefix:
        The cell identifier (tuple of pivot indices, level 1 first).
    level_decay:
        Geometric damping factor in (0, 1].
    """
    if not prefix:
        raise PivotError("cell prefix must be non-empty")
    if not 0.0 < level_decay <= 1.0:
        raise PivotError(f"level_decay must be in (0, 1], got {level_decay}")
    score = 0.0
    weight = 1.0
    for level, pivot in enumerate(prefix):
        displacement = abs(int(query_ranks[pivot]) - level)
        score += weight * displacement
        weight *= level_decay
    return score


def _validate(perm: np.ndarray) -> None:
    if perm.ndim != 1:
        raise PivotError(f"permutation must be 1-D, got shape {perm.shape}")
    n = perm.shape[0]
    if n == 0:
        raise PivotError("permutation must be non-empty")
    seen = np.zeros(n, dtype=bool)
    for value in perm:
        if value < 0 or value >= n or seen[value]:
            raise PivotError(f"not a permutation of 0..{n - 1}: {perm}")
        seen[value] = True


def _inverses(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.shape != b.shape:
        raise PivotError(
            f"permutation size mismatch: {a.shape} vs {b.shape}"
        )
    return inverse_permutation(a), inverse_permutation(b)
