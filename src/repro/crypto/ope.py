"""Order-preserving encryption (OPE) of distance values.

This is the primitive behind Yiu et al.'s Metric-Preserving
Transformation (MPT) baseline (§3.2 of the paper): distances stored in
the outsourced index are passed through a secret strictly-increasing
function, so the server can still *compare* them (and hence traverse a
hierarchical index) without learning the true distance distribution.

The scheme here is a keyed random monotone spline:

* a keyed PRNG draws positive increments over a fixed grid spanning the
  value domain,
* their cumulative sum, linearly interpolated, is the encryption
  function — strictly increasing by construction, hence order
  preserving.

As §3.2 stresses, the function must be calibrated on **a representative
sample of the data** before outsourcing (:meth:`fit`); values outside the
calibrated domain are extrapolated with the boundary slopes, which
degrades the hiding of the tails exactly as the paper's criticism of MPT
predicts.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.exceptions import CryptoError
from repro.parallel import backend

__all__ = ["OrderPreservingEncryption"]


class OrderPreservingEncryption:
    """Keyed strictly-monotone transformation of non-negative values.

    Parameters
    ----------
    key:
        Secret bytes seeding the monotone function.
    resolution:
        Number of grid segments of the spline. More segments hide the
        distribution better at a small memory cost.
    """

    def __init__(self, key: bytes, *, resolution: int = 1024) -> None:
        if not isinstance(key, (bytes, bytearray)) or len(key) == 0:
            raise CryptoError("OPE key must be non-empty bytes")
        if resolution < 2:
            raise CryptoError(f"resolution must be >= 2, got {resolution}")
        self._key = bytes(key)
        self._resolution = int(resolution)
        self._domain: tuple[float, float] | None = None
        self._grid: np.ndarray | None = None
        self._values: np.ndarray | None = None
        self._slope_forward: float | None = None
        self._slope_inverse: float | None = None

    # -- calibration ---------------------------------------------------------

    def fit(self, sample: np.ndarray, *, margin: float = 0.25) -> "OrderPreservingEncryption":
        """Calibrate the domain from a representative value sample.

        The domain is ``[0, (1 + margin) * max(sample)]``; MPT requires
        the sample to cover the realistic distance range (this is its
        operational weakness on dynamic collections).
        """
        values = np.asarray(sample, dtype=np.float64).ravel()
        if values.size == 0:
            raise CryptoError("OPE calibration sample is empty")
        if np.any(values < 0):
            raise CryptoError("OPE operates on non-negative values")
        high = float(values.max()) * (1.0 + margin)
        if high <= 0.0:
            high = 1.0
        self._calibrate(0.0, high)
        return self

    def _calibrate(self, low: float, high: float) -> None:
        seed_bytes = hashlib.sha256(self._key + b"\x00ope-seed").digest()
        rng = np.random.default_rng(
            np.frombuffer(seed_bytes, dtype=np.uint64).tolist()
        )
        increments = rng.gamma(shape=0.8, scale=1.0, size=self._resolution)
        increments = np.maximum(increments, 1e-9)
        cumulative = np.concatenate([[0.0], np.cumsum(increments)])
        scale = rng.uniform(0.5, 2.0) * (high - low)
        self._grid = np.linspace(low, high, self._resolution + 1)
        self._values = cumulative / cumulative[-1] * scale
        self._domain = (low, high)
        # boundary-extrapolation slopes, precomputed once per
        # calibration instead of on every encrypt/decrypt call
        self._slope_forward = (self._values[-1] - self._values[-2]) / (
            self._grid[-1] - self._grid[-2]
        )
        self._slope_inverse = (self._grid[-1] - self._grid[-2]) / (
            self._values[-1] - self._values[-2]
        )

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._domain is not None

    @property
    def domain(self) -> tuple[float, float]:
        """Calibrated input domain ``(low, high)``."""
        if self._domain is None:
            raise CryptoError("OPE not calibrated; call fit() first")
        return self._domain

    # -- transformation -------------------------------------------------------

    def encrypt(self, value: float | np.ndarray) -> float | np.ndarray:
        """Apply the monotone transformation to a scalar or any array.

        Arrays of any shape (including the construction path's whole
        object×pivot distance matrix) transform elementwise in one
        call; row ``i`` of a matrix input equals ``encrypt(matrix[i])``
        bit for bit. Large matrices split into column slices on the
        kernel scheduler when ``REPRO_KERNEL_WORKERS > 1`` — the
        transform is purely elementwise (``np.interp`` plus a boundary
        extrapolation reusing the per-calibration slope), so any slice
        of the input maps to the same slice of the output exactly.
        """
        if self._grid is None or self._values is None:
            raise CryptoError("OPE not calibrated; call fit() first")
        arr = np.asarray(value, dtype=np.float64)
        if np.any(arr < 0):
            raise CryptoError("OPE operates on non-negative values")
        if (
            arr.ndim == 2
            and arr.size >= 2048
            and backend.kernel_workers() > 1
        ):
            out = np.empty_like(arr)

            def compute(start: int, stop: int) -> np.ndarray:
                return self._transform_forward(arr[:, start:stop])

            def write(start: int, stop: int, result: np.ndarray) -> None:
                out[:, start:stop] = result

            spec = backend.ProcessSpec(
                "ope_cols", {"matrix": arr}, self, out
            )
            if backend.parallel_slices(
                "ope", arr.shape[1], compute, write, process_spec=spec
            ):
                return out
        out = self._transform_forward(arr)
        if np.isscalar(value) or arr.ndim == 0:
            return float(out)
        return out

    def _transform_forward(self, arr: np.ndarray) -> np.ndarray:
        """Elementwise monotone map of a validated float64 array."""
        _low, high = self.domain
        # np.interp clamps outside [low, high]; extend with the
        # precomputed boundary slope so the function stays strictly
        # increasing everywhere.
        out = np.interp(arr, self._grid, self._values)
        over = arr > high
        if np.any(over):
            out = np.where(
                over,
                self._values[-1] + (arr - high) * self._slope_forward,
                out,
            )
        return out

    def decrypt(self, value: float | np.ndarray) -> float | np.ndarray:
        """Approximately invert the transformation (authorized side only)."""
        if self._grid is None or self._values is None:
            raise CryptoError("OPE not calibrated; call fit() first")
        arr = np.asarray(value, dtype=np.float64)
        out = np.interp(arr, self._values, self._grid)
        over = arr > self._values[-1]
        if np.any(over):
            out = np.where(
                over,
                self._grid[-1]
                + (arr - self._values[-1]) * self._slope_inverse,
                out,
            )
        if np.isscalar(value) or arr.ndim == 0:
            return float(out)
        return out

    def __repr__(self) -> str:  # pragma: no cover - never leak key material
        state = f"domain={self._domain}" if self.is_fitted else "unfitted"
        return f"OrderPreservingEncryption(resolution={self._resolution}, {state})"
