"""Authorized client and data owner (paper §4.2, Algorithms 1–2).

The client holds the :class:`~repro.crypto.keys.SecretKey` — pivots plus
cipher key — and therefore performs everything the server must not:

* computing object/query–pivot distances (Algorithm 1 line 1,
  Algorithm 2 line 1),
* encrypting payloads on insert and decrypting candidates on search,
* the final candidate-set refinement with true distances
  (Algorithm 2 lines 11–16).

Every one of those steps is charged to the cost components the paper
reports: client / encryption / decryption / distance-computation time.

Beyond the paper's one-query-at-a-time protocol, the client offers a
**batched** search path (:meth:`EncryptedClient.knn_batch`,
:meth:`EncryptedClient.range_batch`): all query–pivot distances of a
batch come out of one ``d_pairwise`` matrix call, the whole batch
travels in a single wire message, and refinement decrypts each unique
candidate once — the server deduplicates candidates shared by several
queries, and an LRU cache of decrypted payloads (keyed by record id)
carries reuse across calls. Batched searches return exactly the same
hits as looped single-query calls.

Construction is columnar as well: :meth:`EncryptedClient.insert_many`
computes one object×pivot distance matrix per bulk, transforms and
permutes it with whole-matrix kernels, and ships the bulk as a single
:class:`~repro.core.records.RecordBatch` wire message (see the
server's ``insert_bulk``). The resulting index is identical to the
per-record protocol's — :meth:`EncryptedClient.insert` is just a bulk
of one.

:class:`DataOwner` is the construction-phase role: it generates the
secret key and bulk-outsources the collection; afterwards it hands the
key to authorized clients (here: :meth:`DataOwner.authorize`).
"""

from __future__ import annotations

import enum
import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.costs import (
    CACHE_HITS,
    CACHE_MISSES,
    CLIENT,
    DECRYPTION,
    DISTANCE,
    ENCRYPTION,
    RECONNECTS,
    RETRIES_ATTEMPTED,
    SHARDS_SKIPPED,
    CostRecorder,
    CostReport,
)
from repro.core.records import (
    CandidateEntry,
    IndexedRecord,
    RecordBatch,
    payload_to_vector,
    vector_to_payload,
)
from repro.crypto.keys import SecretKey
from repro.crypto.ope import OrderPreservingEncryption
from repro.exceptions import QueryError
from repro.metric.permutations import pivot_permutation, pivot_permutations
from repro.metric.space import MetricSpace
from repro.net.rpc import RpcClient
from repro.parallel.scheduler import GLOBAL_STATS
from repro.wire.encoding import Reader, Writer

__all__ = ["Strategy", "SearchHit", "EncryptedClient", "DataOwner"]


class _CandidateCache:
    """LRU cache of decrypted candidate payloads, keyed by record id.

    Entries remember the ciphertext they were decrypted from: a lookup
    only hits when the incoming payload matches bit for bit, so a
    record that was deleted and re-inserted under the same oid with new
    content can never serve a stale plaintext.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise QueryError(
                f"cache capacity must be positive, got {capacity}"
            )
        self.capacity = int(capacity)
        self._entries: OrderedDict[int, tuple[bytes, np.ndarray]] = (
            OrderedDict()
        )

    def get(self, oid: int, payload: bytes) -> np.ndarray | None:
        """The cached plaintext vector, or None on miss."""
        entry = self._entries.get(oid)
        if entry is None or entry[0] != payload:
            return None
        self._entries.move_to_end(oid)
        return entry[1]

    def put(self, oid: int, payload: bytes, vector: np.ndarray) -> None:
        """Insert/refresh an entry, evicting the least recently used."""
        self._entries[oid] = (payload, vector)
        self._entries.move_to_end(oid)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self, oid: int) -> None:
        """Drop one record's entry (after a delete)."""
        self._entries.pop(oid, None)

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


class Strategy(enum.Enum):
    """The server-side representations of an indexed object.

    ``PRECISE`` stores object–pivot distances on the server: range
    queries and pivot filtering work, but the distance distribution
    leaks. ``APPROXIMATE`` stores only the pivot permutation: less
    leakage, approximate k-NN only. ``TRANSFORMED`` is the paper's §6
    future-work extension, implemented here: pivot distances are passed
    through a secret order-preserving transformation before upload, so
    range queries still work (via transformed-interval filtering) while
    the distance *distribution* stays hidden — privacy level 4.
    """

    PRECISE = "precise"
    APPROXIMATE = "approximate"
    TRANSFORMED = "transformed"


@dataclass(frozen=True)
class SearchHit:
    """One refined search answer: object id, plaintext and distance."""

    oid: int
    vector: np.ndarray
    distance: float


class EncryptedClient:
    """Authorized client of the Encrypted M-Index.

    Parameters
    ----------
    secret_key:
        The pivots + cipher key shared by the data owner.
    space:
        Client-side metric space (the client owns the metric; the
        server never sees it). Its distance counter tracks exactly the
        paper's "relocated" computations.
    rpc:
        RPC client bound to the server's channel.
    strategy:
        Which representation inserts produce (must match across all
        writers of one index).
    cache_size:
        Capacity (in records) of the LRU cache of decrypted candidate
        payloads; the default ``0`` disables caching, matching the
        paper's stateless per-query protocol (so reproduction sweeps
        measure what the paper measured). Enable it for throughput
        workloads: hits skip AES decryption and are counted separately
        so the cost breakdown still reconciles.
    deadline:
        Optional per-RPC time budget in seconds applied to every call
        this client makes. Deadline-capable transports ship the budget
        to the server (which sheds the request unexecuted once it
        expires) and raise
        :class:`~repro.exceptions.DeadlineExceededError` locally; the
        default ``None`` keeps the unbounded behaviour.
    """

    def __init__(
        self,
        secret_key: SecretKey,
        space: MetricSpace,
        rpc: RpcClient,
        *,
        strategy: Strategy = Strategy.APPROXIMATE,
        cache_size: int = 0,
        deadline: float | None = None,
    ) -> None:
        self.secret_key = secret_key
        self.space = space
        self.rpc = rpc
        self.strategy = strategy
        self.deadline = deadline
        self.costs = CostRecorder()
        self.cache = _CandidateCache(cache_size) if cache_size else None
        self._ope: OrderPreservingEncryption | None = None

    def _call(self, method: str, body=b"") -> Reader:
        """One RPC under the client's deadline policy."""
        if self.deadline is None:
            return self.rpc.call(method, body)
        return self.rpc.call(method, body, deadline=self.deadline)

    @property
    def ope(self) -> OrderPreservingEncryption:
        """The secret monotone distance transformation (TRANSFORMED).

        Derived deterministically from the secret key: the OPE key is a
        hash of the cipher key, and its domain is calibrated on the
        pivot–pivot distance matrix — both available to every key
        holder, so no extra key material travels out of band.
        """
        if self._ope is None:
            ope_key = hashlib.sha256(
                b"repro.ope\x00" + self.secret_key.cipher_key
            ).digest()
            with self.costs.time(CLIENT):
                with self.costs.time(DISTANCE):
                    pivots = self.secret_key.pivots
                    pairwise = np.stack(
                        [self.space.d_batch(p, pivots) for p in pivots]
                    )
            self._ope = OrderPreservingEncryption(ope_key).fit(
                pairwise, margin=1.0
            )
        return self._ope

    # ------------------------------------------------------------------
    # construction phase (Algorithm 1)
    # ------------------------------------------------------------------

    def insert_many(
        self,
        oids: Sequence[int],
        vectors: np.ndarray,
        *,
        bulk_size: int = 1000,
    ) -> int:
        """Encrypt and outsource objects in bulks (paper uses 1,000).

        Each bulk travels as one columnar record batch through the
        server's ``insert_bulk`` method. Returns the server's total
        record count after the last bulk.
        """
        if len(oids) != len(vectors):
            raise QueryError(
                f"oids ({len(oids)}) and vectors ({len(vectors)}) differ"
            )
        if bulk_size <= 0:
            raise QueryError(f"bulk_size must be positive, got {bulk_size}")
        total = 0
        for start in range(0, len(oids), bulk_size):
            stop = min(start + bulk_size, len(oids))
            with self.costs.time(CLIENT):
                writer = self._encode_bulk(
                    [int(o) for o in oids[start:stop]], vectors[start:stop]
                )
            response = self._call("insert_bulk", writer)
            total = response.u64()
        return total

    def insert(self, oid: int, vector: np.ndarray) -> int:
        """Insert a single object (Algorithm 1) — a bulk of one."""
        return self.insert_many([oid], np.asarray(vector)[None, :])

    def _encode_bulk(self, oids: list[int], vectors: np.ndarray) -> Writer:
        """Algorithm 1 for one bulk, fully vectorized.

        All object–pivot distances come out of a single
        :meth:`MetricSpace.d_pairwise` matrix call (rows bit-identical
        to per-object ``d_batch``), the OPE transform and the pivot
        permutations are applied to the whole matrix at once, and the
        bulk is serialized as one columnar
        :class:`~repro.core.records.RecordBatch` instead of per-record
        encodings.
        """
        pivots = self.secret_key.pivots
        matrix = np.asarray(vectors, dtype=np.float64)
        with self.costs.time(DISTANCE):
            distance_matrix = self.space.d_pairwise(matrix, pivots)
        with self.costs.time(ENCRYPTION):
            payloads = self.secret_key.cipher.encrypt_many(
                [vector_to_payload(row) for row in matrix]
            )
        if self.strategy is Strategy.TRANSFORMED:
            with self.costs.time(ENCRYPTION):
                # a strictly monotone transform preserves the sort
                # order, so the server still derives the correct pivot
                # permutation from the transformed values
                distance_matrix = np.asarray(
                    self.ope.encrypt(distance_matrix)
                )
        oid_column = np.array(oids, dtype=np.uint64)
        if self.strategy is Strategy.APPROXIMATE:
            batch = RecordBatch(
                oid_column,
                pivot_permutations(distance_matrix),
                None,
                payloads,
            )
        else:
            batch = RecordBatch(oid_column, None, distance_matrix, payloads)
        writer = batch.write_to(Writer())
        self.costs.add_count("objects_inserted", len(oids))
        return writer

    def delete(self, oid: int, vector: np.ndarray) -> bool:
        """Remove an outsourced object (dynamic-index maintenance).

        The client recomputes the object's pivot permutation — just as
        on insert — so the server can address the right Voronoi cell
        without learning anything new. Returns True when the server
        removed a record.
        """
        with self.costs.time(CLIENT):
            with self.costs.time(DISTANCE):
                distances = self.space.d_batch(vector, self.secret_key.pivots)
            record = IndexedRecord(
                oid, pivot_permutation(distances), None, b""
            )
            writer = Writer()
            record.write_to(writer)
        if self.cache is not None:
            self.cache.invalidate(oid)
        return self._call("delete", writer).boolean()

    # ------------------------------------------------------------------
    # search phase (Algorithm 2)
    # ------------------------------------------------------------------

    def range_search(self, query: np.ndarray, radius: float) -> list[SearchHit]:
        """Precise range query ``R(q, r)`` (Algorithm 2, precise branch).

        Requires the PRECISE or TRANSFORMED strategy (the server stores
        no pivot distances under APPROXIMATE). Under TRANSFORMED the
        request carries per-pivot transformed intervals instead of raw
        query–pivot distances, hiding the distance distribution.
        """
        if radius < 0:
            raise QueryError(f"radius must be >= 0, got {radius}")
        if self.strategy is Strategy.APPROXIMATE:
            raise QueryError(
                "range queries require the PRECISE or TRANSFORMED "
                "strategy (the server stores no pivot distances under "
                "APPROXIMATE)"
            )
        with self.costs.time(CLIENT):
            with self.costs.time(DISTANCE):
                q_dists = self.space.d_batch(query, self.secret_key.pivots)
            if self.strategy is Strategy.TRANSFORMED:
                with self.costs.time(ENCRYPTION):
                    lows = np.asarray(
                        self.ope.encrypt(np.maximum(q_dists - radius, 0.0))
                    )
                    if radius == float("inf"):
                        highs = np.full_like(q_dists, np.inf)
                    else:
                        highs = np.asarray(self.ope.encrypt(q_dists + radius))
                method = "range_transformed"
                writer = Writer().f64_array(lows).f64_array(highs)
            else:
                method = "range"
                writer = Writer().f64_array(q_dists).f64(radius)
        reader = self._call(method, writer)
        hits = self._refine(query, reader, radius=radius)
        hits.sort(key=lambda hit: (hit.distance, hit.oid))
        return hits

    def knn_search(
        self,
        query: np.ndarray,
        k: int,
        *,
        cand_size: int,
        max_cells: int | None = None,
        refine_limit: int | None = None,
    ) -> list[SearchHit]:
        """Approximate k-NN (Algorithm 2, approximate branch).

        ``cand_size`` is the paper's CandSize parameter; because the
        candidate set arrives pre-ranked, ``refine_limit`` optionally
        decrypts/refines only its head (§4.2: "the client can choose to
        decrypt and compute distances only for candidates with the
        highest rank").
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        if cand_size < k:
            raise QueryError(
                f"cand_size ({cand_size}) must be at least k ({k})"
            )
        with self.costs.time(CLIENT):
            with self.costs.time(DISTANCE):
                q_dists = self.space.d_batch(query, self.secret_key.pivots)
            permutation = pivot_permutation(q_dists)
            writer = Writer()
            writer.i32_array(permutation)
            writer.u32(cand_size)
            writer.u32(max_cells if max_cells is not None else 0)
        reader = self._call("approx_knn", writer)
        hits = self._refine(query, reader, refine_limit=refine_limit)
        hits.sort(key=lambda hit: (hit.distance, hit.oid))
        return hits[:k]

    def knn_precise(
        self, query: np.ndarray, k: int, *, cand_size: int | None = None
    ) -> list[SearchHit]:
        """Precise k-NN: approximate pass for an upper bound rho_k, then
        a confirming range query ``R(q, rho_k)`` (§4.2).

        Requires the PRECISE or TRANSFORMED strategy (for the range
        phase).
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        if self.strategy is Strategy.APPROXIMATE:
            raise QueryError(
                "precise k-NN requires the PRECISE or TRANSFORMED strategy"
            )
        cand_size = cand_size if cand_size is not None else max(4 * k, 64)
        approx = self.knn_search(query, k, cand_size=cand_size)
        if len(approx) < k:
            # Fewer than k objects nearby in the approximate pass
            # (tiny index): an infinite radius disables all pruning and
            # the confirming range query returns the whole collection.
            rho_k = float("inf")
        else:
            rho_k = approx[k - 1].distance
        hits = self.range_search(query, rho_k)
        return hits[:k]

    # ------------------------------------------------------------------
    # batched search (amortized Algorithm 2)
    # ------------------------------------------------------------------

    def knn_batch(
        self,
        queries: np.ndarray,
        k: int,
        *,
        cand_size: int,
        max_cells: int | None = None,
        refine_limit: int | None = None,
    ) -> list[list[SearchHit]]:
        """Approximate k-NN for a whole batch of queries at once.

        Returns one hit list per query row, each exactly equal to
        ``knn_search(query, k, ...)`` — but the batch computes all
        query–pivot distances in one :meth:`MetricSpace.d_pairwise`
        call, travels as a single wire message, is answered by the
        server's vectorized batch search, and decrypts every unique
        candidate only once (the response deduplicates candidates
        shared between queries; the LRU cache carries reuse across
        calls).
        """
        if k <= 0:
            raise QueryError(f"k must be positive, got {k}")
        if cand_size < k:
            raise QueryError(
                f"cand_size ({cand_size}) must be at least k ({k})"
            )
        query_matrix = self._as_query_matrix(queries)
        if query_matrix.shape[0] == 0:
            return []
        with self.costs.time(CLIENT):
            with self.costs.time(DISTANCE):
                distance_matrix = self.space.d_pairwise(
                    query_matrix, self.secret_key.pivots
                )
            permutations = pivot_permutations(distance_matrix)
            writer = Writer()
            writer.i32_matrix(permutations)
            writer.u32(cand_size)
            writer.u32(max_cells if max_cells is not None else 0)
        reader = self._call("knn_batch", writer)
        results = self._refine_batch(
            query_matrix, reader, refine_limit=refine_limit
        )
        for hits in results:
            hits.sort(key=lambda hit: (hit.distance, hit.oid))
        return [hits[:k] for hits in results]

    def range_batch(
        self, queries: np.ndarray, radius: float
    ) -> list[list[SearchHit]]:
        """Precise range queries ``R(q, r)`` for a batch sharing one
        radius; per-query hits are identical to looped
        :meth:`range_search` calls.

        Requires the PRECISE or TRANSFORMED strategy, like
        :meth:`range_search`; under TRANSFORMED the request carries the
        per-pivot transformed interval *matrices* of the whole batch.
        """
        if radius < 0:
            raise QueryError(f"radius must be >= 0, got {radius}")
        if self.strategy is Strategy.APPROXIMATE:
            raise QueryError(
                "range queries require the PRECISE or TRANSFORMED "
                "strategy (the server stores no pivot distances under "
                "APPROXIMATE)"
            )
        query_matrix = self._as_query_matrix(queries)
        if query_matrix.shape[0] == 0:
            return []
        with self.costs.time(CLIENT):
            with self.costs.time(DISTANCE):
                distance_matrix = self.space.d_pairwise(
                    query_matrix, self.secret_key.pivots
                )
            if self.strategy is Strategy.TRANSFORMED:
                with self.costs.time(ENCRYPTION):
                    lows = np.asarray(
                        self.ope.encrypt(
                            np.maximum(distance_matrix - radius, 0.0)
                        )
                    )
                    if radius == float("inf"):
                        highs = np.full_like(distance_matrix, np.inf)
                    else:
                        highs = np.asarray(
                            self.ope.encrypt(distance_matrix + radius)
                        )
                method = "range_transformed_batch"
                writer = Writer().f64_matrix(lows).f64_matrix(highs)
            else:
                method = "range_batch"
                writer = Writer().f64_matrix(distance_matrix).f64(radius)
        reader = self._call(method, writer)
        results = self._refine_batch(query_matrix, reader, radius=radius)
        for hits in results:
            hits.sort(key=lambda hit: (hit.distance, hit.oid))
        return results

    @staticmethod
    def _as_query_matrix(queries: np.ndarray) -> np.ndarray:
        matrix = np.asarray(queries, dtype=np.float64)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.ndim != 2:
            raise QueryError(
                f"queries must form a 2-D matrix, got shape {matrix.shape}"
            )
        return matrix

    # ------------------------------------------------------------------
    # refinement (Algorithm 2 lines 11–16)
    # ------------------------------------------------------------------

    def _decrypt_candidates(
        self, pairs: list[tuple[int, bytes]]
    ) -> np.ndarray:
        """Plaintext vectors for (oid, payload) pairs, via the LRU cache.

        Only cache misses are decrypted (in one vectorized AES call) and
        charged to decryption time; hit/miss counters record exactly how
        many candidates skipped decryption.
        """
        vectors: list[np.ndarray | None] = [None] * len(pairs)
        if self.cache is not None:
            misses = []
            for position, (oid, payload) in enumerate(pairs):
                cached = self.cache.get(oid, payload)
                if cached is None:
                    misses.append(position)
                else:
                    vectors[position] = cached
            self.costs.add_count(CACHE_HITS, len(pairs) - len(misses))
            self.costs.add_count(CACHE_MISSES, len(misses))
        else:
            misses = list(range(len(pairs)))
        if misses:
            with self.costs.time(DECRYPTION):
                plaintexts = self.secret_key.cipher.decrypt_many(
                    [pairs[position][1] for position in misses]
                )
            for position, plaintext in zip(misses, plaintexts):
                vector = payload_to_vector(plaintext)
                vectors[position] = vector
                if self.cache is not None:
                    oid, payload = pairs[position]
                    self.cache.put(oid, payload, vector)
        return np.stack(vectors)

    def _refine(
        self,
        query: np.ndarray,
        reader: Reader,
        *,
        radius: float | None = None,
        refine_limit: int | None = None,
    ) -> list[SearchHit]:
        count = reader.u32()
        hits: list[SearchHit] = []
        limit = count if refine_limit is None else min(refine_limit, count)
        with self.costs.time(CLIENT):
            entries = [CandidateEntry.read_from(reader) for _ in range(count)]
            reader.expect_end()
            head = entries[:limit]
            if head:
                candidates = self._decrypt_candidates(
                    [(entry.oid, entry.payload) for entry in head]
                )
                with self.costs.time(DISTANCE):
                    distances = self.space.d_batch(query, candidates)
                for entry, vector, distance in zip(
                    head, candidates, distances
                ):
                    if radius is None or distance <= radius:
                        hits.append(
                            SearchHit(entry.oid, vector, float(distance))
                        )
            self.costs.add_count("candidates_received", count)
            self.costs.add_count("candidates_refined", limit)
        return hits

    def _refine_batch(
        self,
        queries: np.ndarray,
        reader: Reader,
        *,
        radius: float | None = None,
        refine_limit: int | None = None,
    ) -> list[list[SearchHit]]:
        """Bulk refinement of a deduplicated batch response.

        The wire format is a table of unique (oid, payload) candidates
        followed by one index list per query (rank order). The union of
        all refined heads is decrypted in a single pass; each query then
        computes true distances against its own candidate rows.
        """
        with self.costs.time(CLIENT):
            n_unique = reader.u32()
            unique = [
                (reader.u64(), reader.blob()) for _ in range(n_unique)
            ]
            n_queries = reader.u32()
            if n_queries != queries.shape[0]:
                raise QueryError(
                    f"batch response carries {n_queries} result lists "
                    f"for {queries.shape[0]} queries"
                )
            index_lists = [reader.i32_array() for _ in range(n_queries)]
            reader.expect_end()
            heads = []
            needed: list[int] = []
            needed_position: dict[int, int] = {}
            for indices in index_lists:
                if len(indices) and (
                    indices.min() < 0 or indices.max() >= n_unique
                ):
                    raise QueryError(
                        "batch response references candidates outside "
                        "the unique table"
                    )
                limit = (
                    len(indices)
                    if refine_limit is None
                    else min(refine_limit, len(indices))
                )
                head = [int(index) for index in indices[:limit]]
                heads.append(head)
                for index in head:
                    if index not in needed_position:
                        needed_position[index] = len(needed)
                        needed.append(index)
            vectors = (
                self._decrypt_candidates([unique[i] for i in needed])
                if needed
                else None
            )
            results: list[list[SearchHit]] = []
            for query, indices, head in zip(queries, index_lists, heads):
                hits: list[SearchHit] = []
                if head:
                    assert vectors is not None
                    rows = vectors[[needed_position[i] for i in head]]
                    with self.costs.time(DISTANCE):
                        distances = self.space.d_batch(query, rows)
                    for index, vector, distance in zip(
                        head, rows, distances
                    ):
                        if radius is None or distance <= radius:
                            hits.append(
                                SearchHit(
                                    unique[index][0], vector, float(distance)
                                )
                            )
                self.costs.add_count("candidates_received", len(indices))
                self.costs.add_count("candidates_refined", len(head))
                results.append(hits)
        return results

    # ------------------------------------------------------------------
    # liveness
    # ------------------------------------------------------------------

    def ping(self) -> bool:
        """Round-trip liveness probe against the server."""
        return self._call("ping").string() == "pong"

    # ------------------------------------------------------------------
    # accounting
    # ------------------------------------------------------------------

    def report(self) -> CostReport:
        """Snapshot of all cost components since the last reset."""
        return CostReport(
            client_time=self.costs.seconds(CLIENT),
            encryption_time=self.costs.seconds(ENCRYPTION),
            decryption_time=self.costs.seconds(DECRYPTION),
            distance_time=self.costs.seconds(DISTANCE),
            server_time=self.rpc.server_time,
            communication_time=self.rpc.channel.communication_time,
            communication_bytes=self.rpc.channel.bytes_total,
            extras=self._report_extras(),
        )

    def _report_extras(self) -> dict:
        extras = {
            "distance_computations": self.space.distance_count,
            "candidates_received": self.costs.count("candidates_received"),
            "candidates_refined": self.costs.count("candidates_refined"),
            CACHE_HITS: self.costs.count(CACHE_HITS),
            CACHE_MISSES: self.costs.count(CACHE_MISSES),
        }
        # a resilient RPC layer surfaces its retry/reconnect work; a
        # shard router additionally counts degraded (partial) scatters
        for counter in (RETRIES_ATTEMPTED, RECONNECTS, SHARDS_SKIPPED):
            value = getattr(self.rpc, counter, None)
            if value is not None:
                extras[counter] = value
        # kernel scheduler activity (process-global; covers the
        # client-side distance/OPE/AES kernels of this process)
        extras.update(GLOBAL_STATS.snapshot())
        return extras

    def reset_accounting(self) -> None:
        """Zero client, server-view and channel accounting."""
        self.costs.reset()
        self.rpc.reset_accounting()
        self.space.reset_counter()


class DataOwner:
    """The construction-phase role: generates the key, outsources data.

    The owner *is* an authorized client with extra responsibilities, so
    it wraps an :class:`EncryptedClient` and exposes
    :meth:`authorize` for handing the secret key to further clients.
    """

    def __init__(
        self,
        secret_key: SecretKey,
        space: MetricSpace,
        rpc: RpcClient,
        *,
        strategy: Strategy = Strategy.APPROXIMATE,
    ) -> None:
        self.client = EncryptedClient(secret_key, space, rpc, strategy=strategy)

    @classmethod
    def create(
        cls,
        data: np.ndarray,
        space: MetricSpace,
        rpc: RpcClient,
        *,
        n_pivots: int,
        strategy: Strategy = Strategy.APPROXIMATE,
        rng: np.random.Generator | None = None,
        pivot_strategy: str = "random",
        key_bits: int = 128,
    ) -> "DataOwner":
        """Generate a fresh secret key from the collection and wire up."""
        key = SecretKey.generate(
            data,
            n_pivots,
            rng=rng,
            strategy=pivot_strategy,
            space=space,
            key_bits=key_bits,
        )
        return cls(key, space, rpc, strategy=strategy)

    @property
    def secret_key(self) -> SecretKey:
        """The owner's secret key."""
        return self.client.secret_key

    def outsource(
        self,
        oids: Sequence[int],
        vectors: np.ndarray,
        *,
        bulk_size: int = 1000,
    ) -> int:
        """Construction phase: encrypt + send the whole collection."""
        return self.client.insert_many(oids, vectors, bulk_size=bulk_size)

    def authorize(self) -> SecretKey:
        """Hand the secret key to an authorized client (out of band)."""
        return self.secret_key
