"""The privacy contract: what the untrusted server actually holds.

§4.3 of the paper enumerates the server's knowledge — encrypted object
data plus pivot permutations (or object–pivot distances). These tests
assert the contract *by inspecting the server state directly*: no
plaintext bytes, no pivots, and nothing in the core server package that
could compute a metric distance.
"""

import numpy as np

from repro.core.client import Strategy
from repro.core.cloud import SimilarityCloud
from repro.metric.distances import L1Distance


def _all_server_payloads(cloud):
    for cell in cloud.server.storage.cells():
        for record in cloud.server.storage.load(cell):
            yield record


class TestServerHoldsNoPlaintext:
    def test_payloads_are_not_plaintext(self, approx_cloud, small_data):
        """No stored payload may contain any object's raw bytes."""
        plaintext_blobs = {
            small_data[i].tobytes() for i in range(0, 200, 20)
        }
        for record in _all_server_payloads(approx_cloud):
            for blob in plaintext_blobs:
                assert blob not in record.payload

    def test_payload_sizes_leak_only_length(self, approx_cloud):
        """All tokens have the same size (vector dim + 32B overhead) —
        the only metadata the ciphertext itself reveals."""
        sizes = {r.payload_size for r in _all_server_payloads(approx_cloud)}
        assert sizes == {12 * 8 + 32}

    def test_approximate_strategy_stores_no_distances(self, approx_cloud):
        for record in _all_server_payloads(approx_cloud):
            assert record.distances is None
            assert record.permutation is not None

    def test_precise_strategy_stores_distances_not_vectors(
        self, precise_cloud, small_data
    ):
        for record in _all_server_payloads(precise_cloud):
            assert record.distances is not None
            # distances are to 8 pivots; they are not the 12-dim object
            assert record.distances.shape == (8,)

    def test_server_never_receives_query_object(
        self, approx_cloud, queries, monkeypatch
    ):
        """Capture every request byte stream and check the query vector
        never crosses the wire."""
        client = approx_cloud.new_client()
        seen = []
        original = approx_cloud.server.handle

        def spy(request: bytes) -> bytes:
            seen.append(request)
            return original(request)

        monkeypatch.setattr(client.rpc.channel, "_handler", spy)
        q = queries[0]
        client.knn_search(q, 5, cand_size=100)
        q_bytes = np.ascontiguousarray(q, dtype="<f8").tobytes()
        for request in seen:
            assert q_bytes not in request


class TestServerHoldsNoMetric:
    def test_server_package_does_not_import_distances(self):
        """The server module must not even import the metric machinery
        for plaintext objects — the structural guarantee behind 'the
        server cannot compute the similarity distance function'."""
        import repro.core.server as server_module

        source = open(server_module.__file__).read()
        assert "metric.distances" not in source
        assert "MetricSpace" not in source

    def test_attacker_with_server_state_cannot_rank_by_true_distance(
        self, approx_cloud, small_data, rng
    ):
        """Sanity: permutations alone do not reveal the true nearest
        neighbour ordering for a *plaintext-unknown* query; this is a
        smoke check that candidate ranks come from rank heuristics, not
        true distances (which the server cannot have)."""
        records = [r for r in _all_server_payloads(approx_cloud)]
        assert all(r.distances is None for r in records)


class TestKeyIsolation:
    def test_unauthorized_key_cannot_decrypt(self, small_data, queries):
        cloud_a = SimilarityCloud.build(
            small_data, distance=L1Distance(), n_pivots=8,
            bucket_capacity=40, strategy=Strategy.APPROXIMATE, seed=1,
        )
        cloud_a.owner.outsource(range(100), small_data[:100])
        cloud_b = SimilarityCloud.build(
            small_data, distance=L1Distance(), n_pivots=8,
            bucket_capacity=40, strategy=Strategy.APPROXIMATE, seed=2,
        )
        # a client of cloud B (different secret key) pointed at cloud A
        import pytest

        from repro.exceptions import AuthenticationError

        rogue = cloud_a.new_client(secret_key=cloud_b.owner.authorize())
        with pytest.raises(AuthenticationError):
            rogue.knn_search(queries[0], 3, cand_size=50)
