"""Attacker simulations: what a compromised server can compute (§4.3).

Each attack consumes exactly the **server's view** — the
:class:`~repro.core.records.IndexedRecord` list with encrypted payloads
— never the plaintext or the pivots, and produces whatever the paper's
threat discussion says it could learn:

* :class:`PermutationFrequencyAttack` — from stored permutations the
  attacker learns the cell-occupancy distribution, i.e. clustering
  structure of the collection (the residual leak of the approximate
  strategy the paper acknowledges).
* :class:`DistanceDistributionAttack` — under the precise strategy the
  stored object–pivot distances are *true* distances to unknown
  anchors, so their histogram estimates the collection's distance
  distribution (why the paper calls distance transformations future
  work).
* :class:`CooccurrenceAttack` — pivots that are near each other in the
  space co-occur at adjacent permutation ranks; spectral clustering of
  the co-occurrence graph (via networkx) recovers pivot *structure*
  without knowing any pivot, demonstrating ordering leakage.
"""

from __future__ import annotations

from collections import Counter

import networkx as nx
import numpy as np

from repro.core.records import IndexedRecord
from repro.exceptions import EvaluationError
from repro.privacy.analysis import distribution_distance

__all__ = [
    "PermutationFrequencyAttack",
    "DistanceDistributionAttack",
    "CooccurrenceAttack",
]


def _server_view(records: list[IndexedRecord]) -> list[IndexedRecord]:
    if not records:
        raise EvaluationError("attack needs a non-empty server view")
    return records


class PermutationFrequencyAttack:
    """Estimate collection clustering from permutation prefixes alone."""

    def __init__(self, records: list[IndexedRecord], *, prefix_length: int = 2):
        self.records = _server_view(records)
        if prefix_length <= 0:
            raise EvaluationError(
                f"prefix_length must be positive, got {prefix_length}"
            )
        self.prefix_length = prefix_length

    def cell_histogram(self) -> dict[tuple[int, ...], int]:
        """Occupancy count per observed permutation prefix."""
        counts: Counter = Counter()
        for record in self.records:
            perm = record.ensure_permutation()
            counts[tuple(int(x) for x in perm[: self.prefix_length])] += 1
        return dict(counts)

    def skew(self) -> float:
        """Occupancy skew: largest cell's share of the collection.

        A perfectly uniform partitioning gives ``1 / n_cells``; values
        far above that reveal clustering to the attacker.
        """
        histogram = self.cell_histogram()
        total = sum(histogram.values())
        return max(histogram.values()) / total

    def top_cells(self, count: int = 10) -> list[tuple[tuple[int, ...], int]]:
        """The ``count`` most populated cells, largest first."""
        histogram = self.cell_histogram()
        return sorted(histogram.items(), key=lambda kv: (-kv[1], kv[0]))[:count]


class DistanceDistributionAttack:
    """Reconstruct the distance distribution from stored pivot distances.

    Only applicable to the PRECISE strategy; raises on permutation-only
    records (which is itself the demonstration that the approximate
    strategy closes this channel).
    """

    def __init__(self, records: list[IndexedRecord]) -> None:
        self.records = _server_view(records)
        if any(record.distances is None for record in self.records):
            raise EvaluationError(
                "server view holds no pivot distances (approximate "
                "strategy) - the distance-distribution channel is closed"
            )

    def reconstructed_sample(self) -> np.ndarray:
        """All object–pivot distances visible to the server, flattened."""
        return np.concatenate(
            [record.distances for record in self.records]
        )

    def leakage_score(self, true_distances: np.ndarray) -> float:
        """1 - total-variation distance to the true distance sample.

        1.0 means the attacker's reconstruction is statistically
        indistinguishable from the true object-to-object distance
        distribution; 0.0 means nothing was learned.
        """
        return 1.0 - distribution_distance(
            self.reconstructed_sample(), true_distances
        )


class CooccurrenceAttack:
    """Recover pivot proximity structure from rank co-occurrence.

    Builds a weighted graph over pivot indices where the edge weight of
    ``(i, j)`` counts how often pivots ``i`` and ``j`` appear within a
    window of top permutation ranks of the same object. Near-by pivots
    co-occur; community detection on the graph then groups pivots by
    region of space — structure the server was never told.
    """

    def __init__(
        self,
        records: list[IndexedRecord],
        n_pivots: int,
        *,
        window: int = 3,
    ) -> None:
        self.records = _server_view(records)
        if n_pivots <= 0:
            raise EvaluationError(f"n_pivots must be positive, got {n_pivots}")
        if window < 2:
            raise EvaluationError(f"window must be >= 2, got {window}")
        self.n_pivots = n_pivots
        self.window = window

    def cooccurrence_graph(self) -> nx.Graph:
        """The weighted pivot co-occurrence graph."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.n_pivots))
        for record in self.records:
            perm = record.ensure_permutation()
            head = [int(x) for x in perm[: self.window]]
            for a_pos in range(len(head)):
                for b_pos in range(a_pos + 1, len(head)):
                    a, b = head[a_pos], head[b_pos]
                    if graph.has_edge(a, b):
                        graph[a][b]["weight"] += 1
                    else:
                        graph.add_edge(a, b, weight=1)
        return graph

    def pivot_communities(self) -> list[set[int]]:
        """Greedy-modularity communities of the co-occurrence graph."""
        graph = self.cooccurrence_graph()
        communities = nx.algorithms.community.greedy_modularity_communities(
            graph, weight="weight"
        )
        return [set(int(v) for v in community) for community in communities]

    def structure_score(self, pivots: np.ndarray, space) -> float:
        """Evaluate the attack against ground truth (test harness only).

        Returns the fraction of co-occurrence-community pivot pairs
        whose true distance is below the median pivot–pivot distance —
        above 0.5 means the attacker genuinely recovered proximity
        structure. ``pivots`` and ``space`` are ground-truth inputs
        available to the *evaluator*, never to the attacker.
        """
        pivots = np.asarray(pivots, dtype=np.float64)
        all_pairs = [
            space.d(pivots[i], pivots[j])
            for i in range(len(pivots))
            for j in range(i + 1, len(pivots))
        ]
        median = float(np.median(all_pairs))
        close = 0
        total = 0
        for community in self.pivot_communities():
            members = sorted(community)
            for a_pos in range(len(members)):
                for b_pos in range(a_pos + 1, len(members)):
                    total += 1
                    if space.d(
                        pivots[members[a_pos]], pivots[members[b_pos]]
                    ) < median:
                        close += 1
        if total == 0:
            return 0.0
        return close / total
