"""Clock abstraction: wall clock for real runs, simulated for benches.

Every timed component (client, server, channel) takes a :class:`Clock`.
With :class:`WallClock` the numbers are honest wall-clock seconds; with
:class:`SimulatedClock` time only moves when a cost model advances it,
making the communication-time rows of the tables deterministic.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable

__all__ = ["Clock", "WallClock", "SimulatedClock"]


@runtime_checkable
class Clock(Protocol):
    """Minimal clock interface: monotonically non-decreasing seconds."""

    def now(self) -> float:
        """Current time in seconds."""
        ...


class WallClock:
    """Real monotonic wall clock (``time.perf_counter``)."""

    def now(self) -> float:
        return time.perf_counter()


class SimulatedClock:
    """A clock that only advances when told to.

    Channels and cost models call :meth:`advance`; timers read
    :meth:`now`. Starting time defaults to zero.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward; negative advances are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds} s")
        self._now += seconds
