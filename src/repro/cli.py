"""Command-line interface: ``python -m repro <command>``.

Four commands for kicking the tires without writing code:

* ``info`` — version, implemented systems and their privacy levels,
* ``demo`` — build an encrypted deployment over a named dataset, run a
  query sweep and print the paper-style cost table,
* ``serve`` — stand up a similarity-cloud server over a named dataset
  on a real TCP port (legacy threaded transport or the pipelined
  asyncio transport),
* ``attack`` — play the compromised server against a fresh deployment
  and report what leaks under the chosen strategy.
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

import numpy as np

from repro import __version__
from repro.core.client import Strategy
from repro.core.cloud import SimilarityCloud
from repro.datasets.registry import DATASET_NAMES, load_dataset
from repro.evaluation.metrics import exact_knn, recall
from repro.evaluation.runner import (
    run_encrypted_construction,
    run_encrypted_search_sweep,
)
from repro.evaluation.tables import format_matrix, format_search_table
from repro.metric.distances import L1Distance
from repro.metric.space import MetricSpace
from repro.privacy.attacks import (
    CooccurrenceAttack,
    DistanceDistributionAttack,
    PermutationFrequencyAttack,
)
from repro.privacy.levels import KNOWN_SYSTEMS, classify_system

__all__ = ["main"]


def _cmd_info(_args: argparse.Namespace) -> int:
    print(f"repro {__version__} - Encrypted M-Index reproduction")
    print("(Kozak, Novak, Zezula: Secure Metric-Based Index for "
          "Similarity Cloud, SDM@VLDB 2012)\n")
    rows = [
        (name, [f"level {int(classify_system(profile))}"])
        for name, profile in sorted(KNOWN_SYSTEMS.items())
    ]
    print(
        format_matrix(
            "Implemented systems and their privacy level (paper §2.3)",
            ["privacy"],
            rows,
            row_header="System",
        )
    )
    print(f"\ndatasets: {', '.join(DATASET_NAMES)}")
    print("strategies: " + ", ".join(s.value for s in Strategy))
    return 0


def _parse_strategy(name: str) -> Strategy:
    try:
        return Strategy(name)
    except ValueError:
        raise SystemExit(
            f"unknown strategy {name!r}; choose from "
            f"{', '.join(s.value for s in Strategy)}"
        )


def _cmd_demo(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, **(
        {"n_records": args.records} if args.dataset == "cophir" else {}
    ))
    strategy = _parse_strategy(args.strategy)
    print(f"building encrypted deployment over {dataset.name} "
          f"({dataset.n_records} x {dataset.dimension}, "
          f"{dataset.n_pivots} pivots, strategy={strategy.value}) ...")
    cloud, construction = run_encrypted_construction(
        dataset, strategy=strategy, seed=args.seed
    )
    print(f"construction: {construction.overall_time:.3f}s overall, "
          f"{construction.communication_kb:.0f} kB uploaded, "
          f"{cloud.server.index.n_cells} cells\n")
    client = cloud.new_client()
    cand_sizes = args.cand_sizes or [
        max(args.k, dataset.n_records // 20),
        max(args.k, dataset.n_records // 5),
    ]
    rows = run_encrypted_search_sweep(
        client,
        dataset,
        k=args.k,
        cand_sizes=cand_sizes,
        n_queries=min(args.queries, len(dataset.queries)),
    )
    print(
        format_search_table(
            f"Approximate {args.k}-NN on {dataset.name} "
            f"({min(args.queries, len(dataset.queries))} queries, "
            "per-query averages)",
            rows,
        )
    )
    if strategy is not Strategy.APPROXIMATE:
        q = dataset.queries[0]
        hits = client.knn_precise(q, args.k)
        truth = exact_knn(dataset.distance, dataset.vectors, q, args.k)
        print(f"\nprecise {args.k}-NN check on one query: recall "
              f"{recall([h.oid for h in hits], truth):.0f}% (guaranteed 100)")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    dataset = load_dataset(args.dataset, **(
        {"n_records": args.records} if args.dataset == "cophir" else {}
    ))
    strategy = _parse_strategy(args.strategy)
    print(f"building encrypted deployment over {dataset.name} "
          f"({dataset.n_records} x {dataset.dimension}, "
          f"strategy={strategy.value}, transport={args.transport}"
          + (f", shards={args.shards}" if args.shards > 1 else "")
          + ") ...")
    cloud = SimilarityCloud.build(
        dataset.vectors,
        distance=dataset.distance,
        n_pivots=dataset.n_pivots,
        bucket_capacity=dataset.bucket_capacity,
        strategy=strategy,
        seed=args.seed,
        transport=args.transport,
        shards=args.shards,
    )
    cloud.owner.outsource(range(dataset.n_records), dataset.vectors)
    if cloud.cluster is not None:
        total = sum(len(s.index) for s in cloud.cluster.servers)
        ports = ", ".join(
            f"{t.host}:{t.port}" for t in cloud.cluster._transports
        )
        print(f"serving {total} records across {args.shards} shards "
              f"on {ports}")
    else:
        server = cloud._tcp_server
        print(f"serving {len(cloud.server.index)} records on "
              f"{server.host}:{server.port}")
    # SIGTERM triggers the same graceful path as Ctrl-C: drain (finish
    # in-flight requests, flush storage), then close
    stop = threading.Event()
    previous = None
    try:
        previous = signal.signal(
            signal.SIGTERM, lambda signum, frame: stop.set()
        )
    except ValueError:
        pass  # not the main thread (e.g. under a test runner)
    try:
        if args.duration is None:
            print("press Ctrl-C to stop")
            while not stop.is_set():
                stop.wait(3600)
        elif args.duration > 0:
            stop.wait(args.duration)
    except KeyboardInterrupt:
        pass
    finally:
        if previous is not None:
            signal.signal(signal.SIGTERM, previous)
        print("draining ...")
        drained = cloud.drain(args.drain_timeout)
        cloud.close()
        print("server stopped" + ("" if drained else " (drain timed out)"))
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    strategy = _parse_strategy(args.strategy)
    rng = np.random.default_rng(args.seed)
    centers = rng.normal(0.0, 10.0, size=(5, 12))
    data = centers[rng.integers(0, 5, size=args.records)] + rng.normal(
        0.0, 1.0, size=(args.records, 12)
    )
    cloud = SimilarityCloud.build(
        data, distance=L1Distance(), n_pivots=12, bucket_capacity=80,
        strategy=strategy, seed=args.seed,
    )
    cloud.owner.outsource(range(len(data)), data)
    view = []
    for cell in cloud.server.storage.cells():
        view.extend(cloud.server.storage.load(cell))
    print(f"attacking a {strategy.value}-strategy server holding "
          f"{len(view)} encrypted records ...\n")

    freq = PermutationFrequencyAttack(view, prefix_length=1)
    print(f"permutation frequency: largest cell = "
          f"{freq.skew() * 100:.1f}% of the collection "
          f"(uniform ~{100 / 12:.1f}%)")

    cooc = CooccurrenceAttack(view, n_pivots=12)
    score = cooc.structure_score(
        cloud.owner.secret_key.pivots, MetricSpace(L1Distance(), 12)
    )
    print(f"pivot co-occurrence: {score * 100:.0f}% of grouped pivot "
          f"pairs are truly close (50% = random guessing)")

    try:
        attack = DistanceDistributionAttack(view)
        idx = rng.choice(len(data), 200, replace=False)
        true_sample = np.array([
            float(np.abs(data[i] - data[j]).sum())
            for i, j in zip(idx[:100], idx[100:])
        ])
        print(f"distance distribution: leakage score "
              f"{attack.leakage_score(true_sample):.2f} "
              f"(1.0 = fully recovered)")
    except Exception as exc:
        print(f"distance distribution: blocked ({exc})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Encrypted M-Index reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="versions, systems, privacy levels")

    demo = sub.add_parser("demo", help="build + search a named dataset")
    demo.add_argument("--dataset", default="yeast", choices=DATASET_NAMES)
    demo.add_argument("--strategy", default="approximate")
    demo.add_argument("--k", type=int, default=10)
    demo.add_argument("--queries", type=int, default=20)
    demo.add_argument("--records", type=int, default=3000,
                      help="collection size (cophir only)")
    demo.add_argument("--cand-sizes", type=int, nargs="*", dest="cand_sizes")
    demo.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser(
        "serve", help="stand up a similarity-cloud server on a TCP port"
    )
    serve.add_argument("--dataset", default="yeast", choices=DATASET_NAMES)
    serve.add_argument("--strategy", default="precise")
    serve.add_argument(
        "--transport", default="tcp-async", choices=["tcp", "tcp-async"],
        help="legacy threaded transport or the pipelined asyncio stack",
    )
    serve.add_argument("--records", type=int, default=3000,
                       help="collection size (cophir only)")
    serve.add_argument("--shards", type=int, default=1,
                       help="partition the cell tree across N shard "
                            "servers (each on its own port); clients "
                            "scatter-gather through a ShardRouter with "
                            "bit-identical results")
    serve.add_argument("--drain-timeout", type=float, default=30.0,
                       help="seconds to wait for in-flight requests on "
                            "shutdown (SIGTERM and Ctrl-C both drain "
                            "gracefully before closing)")
    serve.add_argument("--duration", type=float, default=None,
                       help="seconds to serve (default: until Ctrl-C; "
                            "0 = start, print the port, and stop)")
    serve.add_argument("--seed", type=int, default=0)

    attack = sub.add_parser("attack", help="simulate a compromised server")
    attack.add_argument("--strategy", default="precise")
    attack.add_argument("--records", type=int, default=1000)
    attack.add_argument("--seed", type=int, default=0)

    return parser


_COMMANDS = {
    "info": _cmd_info,
    "demo": _cmd_demo,
    "serve": _cmd_serve,
    "attack": _cmd_attack,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
