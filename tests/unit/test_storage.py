"""Unit tests for repro.storage (bucket, memory and disk backends)."""

import json
import threading

import numpy as np
import pytest

from repro.core.records import IndexedRecord
from repro.exceptions import BucketCapacityError, StorageError
from repro.storage.bucket import Bucket
from repro.storage.chunks import (
    BlockCache,
    build_chunks,
    scan_chunks,
)
from repro.storage.disk import DiskStorage
from repro.storage.memory import MemoryStorage


def _record(oid: int, n_pivots: int = 4) -> IndexedRecord:
    rng = np.random.default_rng(oid)
    return IndexedRecord(
        oid,
        rng.permutation(n_pivots).astype(np.int32),
        rng.random(n_pivots),
        bytes([oid % 256] * 10),
    )


class TestBucket:
    def test_add_until_full(self):
        bucket = Bucket(3)
        for oid in range(3):
            bucket.add(_record(oid))
        assert bucket.is_full
        with pytest.raises(BucketCapacityError):
            bucket.add(_record(99))

    def test_initial_records(self):
        bucket = Bucket(5, [_record(1), _record(2)])
        assert len(bucket) == 2
        assert [r.oid for r in bucket] == [1, 2]

    def test_initial_overflow_rejected(self):
        with pytest.raises(BucketCapacityError):
            Bucket(1, [_record(1), _record(2)])

    def test_invalid_capacity_rejected(self):
        with pytest.raises(StorageError):
            Bucket(0)


class _StorageContract:
    """Shared behavioural tests for both storage backends."""

    def make(self, tmp_path):
        raise NotImplementedError

    def test_save_and_load(self, tmp_path):
        storage = self.make(tmp_path)
        records = [_record(i) for i in range(5)]
        storage.save(("a",), records)
        loaded = storage.load(("a",))
        assert [r.oid for r in loaded] == [0, 1, 2, 3, 4]
        np.testing.assert_array_equal(
            loaded[2].distances, records[2].distances
        )

    def test_load_missing_returns_empty(self, tmp_path):
        storage = self.make(tmp_path)
        assert storage.load(("missing",)) == []

    def test_append_creates_and_extends(self, tmp_path):
        storage = self.make(tmp_path)
        storage.append((1, 2), _record(1))
        storage.append((1, 2), _record(2))
        assert [r.oid for r in storage.load((1, 2))] == [1, 2]

    def test_save_replaces(self, tmp_path):
        storage = self.make(tmp_path)
        storage.save(("x",), [_record(1), _record(2)])
        storage.save(("x",), [_record(3)])
        assert [r.oid for r in storage.load(("x",))] == [3]

    def test_delete(self, tmp_path):
        storage = self.make(tmp_path)
        storage.save(("x",), [_record(1)])
        storage.delete(("x",))
        assert storage.load(("x",)) == []
        with pytest.raises(StorageError):
            storage.delete(("x",))

    def test_cell_size_without_io(self, tmp_path):
        storage = self.make(tmp_path)
        storage.save(("c",), [_record(i) for i in range(3)])
        reads_before = storage.reads
        assert storage.cell_size(("c",)) == 3
        assert storage.cell_size(("missing",)) == 0
        assert storage.reads == reads_before

    def test_cells_iteration_and_len(self, tmp_path):
        storage = self.make(tmp_path)
        storage.save(("a",), [_record(1)])
        storage.save(("b",), [_record(2), _record(3)])
        assert sorted(storage.cells()) == [("a",), ("b",)]
        assert len(storage) == 3

    def test_accounting_counters(self, tmp_path):
        storage = self.make(tmp_path)
        storage.save(("a",), [_record(1)])
        storage.load(("a",))
        assert storage.bytes_written > 0
        assert storage.bytes_read > 0
        storage.reset_accounting()
        assert storage.bytes_written == 0
        assert storage.reads == 0

    def test_save_many_charges_one_write_per_cell(self, tmp_path):
        storage = self.make(tmp_path)
        storage.save_many(
            {("a",): [_record(1), _record(2)], ("b",): [_record(3)]}
        )
        assert [r.oid for r in storage.load(("a",))] == [1, 2]
        assert [r.oid for r in storage.load(("b",))] == [3]
        # same accounting as a loop of save() calls
        assert storage.writes == 2
        assert storage.bytes_written > 0

    def test_append_many_is_one_physical_write(self, tmp_path):
        storage = self.make(tmp_path)
        storage.append(("c",), _record(1))
        writes_before = storage.writes
        storage.append_many(("c",), [_record(2), _record(3)])
        assert [r.oid for r in storage.load(("c",))] == [1, 2, 3]
        # the whole group lands as ONE physical write — the semantic
        # the bulk-insert path's write-amplification claims rest on
        assert storage.writes == writes_before + 1

    def test_append_many_empty_group_is_noop(self, tmp_path):
        storage = self.make(tmp_path)
        storage.append_many(("c",), [])
        assert storage.writes == 0
        assert storage.load(("c",)) == []

    def test_payloads_survive_roundtrip(self, tmp_path):
        storage = self.make(tmp_path)
        record = IndexedRecord(
            7, np.array([1, 0], dtype=np.int32), None, b"\x00\xff" * 50
        )
        storage.save(("p",), [record])
        assert storage.load(("p",))[0].payload == b"\x00\xff" * 50


class TestMemoryStorage(_StorageContract):
    def make(self, tmp_path):
        return MemoryStorage()

    def test_load_returns_copy(self, tmp_path):
        storage = self.make(tmp_path)
        storage.save(("a",), [_record(1)])
        loaded = storage.load(("a",))
        loaded.append(_record(2))
        assert len(storage.load(("a",))) == 1


class TestDiskStorage(_StorageContract):
    def make(self, tmp_path):
        return DiskStorage(tmp_path / "cells")

    @staticmethod
    def _cell_files(tmp_path):
        return [
            path
            for path in (tmp_path / "cells").iterdir()
            if path.name.startswith("cell_")
        ]

    def test_files_created_on_disk(self, tmp_path):
        storage = self.make(tmp_path)
        storage.save(("a", "b"), [_record(1)])
        files = self._cell_files(tmp_path)
        assert len(files) == 1
        # plus the persisted catalog next to it
        assert (tmp_path / "cells" / "manifest.json").exists()

    def test_distinct_cells_distinct_files(self, tmp_path):
        storage = self.make(tmp_path)
        storage.save((1,), [_record(1)])
        storage.save((2,), [_record(2)])
        assert len(self._cell_files(tmp_path)) == 2

    def test_delete_removes_file(self, tmp_path):
        storage = self.make(tmp_path)
        storage.save((1,), [_record(1)])
        storage.delete((1,))
        # the cell file is gone; the (now empty) manifest remains
        assert self._cell_files(tmp_path) == []
        assert (tmp_path / "cells" / "manifest.json").exists()

    def test_save_replaces_old_generation_file(self, tmp_path):
        storage = self.make(tmp_path)
        storage.save((1,), [_record(1), _record(2)])
        storage.save((1,), [_record(3)])
        # the rewrite bumped the generation and removed the old file
        files = self._cell_files(tmp_path)
        assert len(files) == 1
        assert files[0].name.endswith(".g1.chk")

    def test_no_tmp_files_left_behind(self, tmp_path):
        storage = self.make(tmp_path)
        storage.save_many({(i,): [_record(i)] for i in range(4)})
        storage.append_many((0,), [_record(9)])
        storage.delete((3,))
        names = [p.name for p in (tmp_path / "cells").iterdir()]
        assert not [name for name in names if name.endswith(".tmp")]


class TestAccountingParity:
    """Backend accounting parity: both backends must charge the same
    logical operations (only the *byte* counters may differ — disk
    reports physical compressed bytes)."""

    @staticmethod
    def _counters(storage):
        return (storage.reads, storage.writes)

    def _pair(self, tmp_path):
        return MemoryStorage(), DiskStorage(tmp_path / "cells")

    def test_absent_cell_load_charges_nothing(self, tmp_path):
        for storage in self._pair(tmp_path):
            assert storage.load(("nope",)) == []
            assert self._counters(storage) == (0, 0)
            assert storage.bytes_read == 0

    def test_delete_charges_one_write(self, tmp_path):
        for storage in self._pair(tmp_path):
            storage.save(("x",), [_record(1)])
            writes_before = storage.writes
            storage.delete(("x",))
            assert storage.writes == writes_before + 1

    def test_op_counters_identical_across_backends(self, tmp_path):
        def drive(storage):
            storage.save(("a",), [_record(i) for i in range(3)])
            storage.save_many({("b",): [_record(3)], ("c",): [_record(4)]})
            storage.append(("a",), _record(5))
            storage.append_many(("b",), [_record(6), _record(7)])
            storage.load(("a",))
            storage.load(("missing",))
            storage.delete(("c",))
            return (storage.reads, storage.writes)

        memory, disk = self._pair(tmp_path)
        assert drive(memory) == drive(disk)


class TestChunkFormat:
    def test_records_never_span_chunks(self):
        records = [_record(i) for i in range(50)]
        payload, entries = build_chunks(
            records, base_offset=0, chunk_raw_bytes=64
        )
        assert len(entries) > 1  # tiny budget forces many chunks
        assert sum(e.n_records for e in entries) == len(records)
        rescanned, end = scan_chunks(payload, 0)
        assert rescanned == entries
        assert end == len(payload)

    def test_scan_ignores_torn_tail(self):
        payload, entries = build_chunks(
            [_record(i) for i in range(10)], base_offset=0,
            chunk_raw_bytes=64,
        )
        torn = payload + b"\x99\x00\x00\x00\x01"  # half a chunk header
        rescanned, end = scan_chunks(torn, 0)
        assert rescanned == entries
        assert end == len(payload)

    def test_multi_chunk_cell_roundtrips(self, tmp_path):
        storage = DiskStorage(tmp_path / "cells", chunk_raw_bytes=64)
        records = [_record(i) for i in range(40)]
        storage.save((7,), records)
        assert [r.oid for r in storage.load((7,))] == list(range(40))

    def test_compression_shrinks_redundant_payloads(self, tmp_path):
        storage = DiskStorage(tmp_path / "cells")
        records = [
            IndexedRecord(
                i, np.arange(4, dtype=np.int32), None, b"abc123" * 400
            )
            for i in range(30)
        ]
        storage.save((1,), records)
        raw = sum(r.wire_size for r in records)
        assert storage.bytes_written < raw / 2


class TestBlockCache:
    def test_hit_miss_and_lru_eviction(self):
        cache = BlockCache(100)
        cache.put("f", 0, b"a" * 40)
        cache.put("f", 1, b"b" * 40)
        assert cache.get("f", 0) == b"a" * 40  # 0 is now most recent
        cache.put("f", 2, b"c" * 40)  # evicts ordinal 1 (LRU)
        assert cache.get("f", 1) is None
        assert cache.get("f", 0) is not None
        assert cache.used_bytes == 80

    def test_zero_budget_disables(self):
        cache = BlockCache(0)
        cache.put("f", 0, b"x")
        assert cache.get("f", 0) is None
        assert len(cache) == 0

    def test_oversized_value_not_cached(self):
        cache = BlockCache(10)
        cache.put("f", 0, b"x" * 11)
        assert cache.get("f", 0) is None

    def test_invalidate_file(self):
        cache = BlockCache(100)
        cache.put("f", 0, b"aa")
        cache.put("g", 0, b"bb")
        cache.invalidate_file("f")
        assert cache.get("f", 0) is None
        assert cache.get("g", 0) == b"bb"
        assert cache.used_bytes == 2

    def test_disk_counters_are_exact(self, tmp_path):
        storage = DiskStorage(tmp_path / "cells", chunk_raw_bytes=64)
        storage.save((1,), [_record(i) for i in range(20)])
        n_chunks = len(storage._catalog[(1,)].chunks)
        assert n_chunks > 1
        storage.reset_accounting()
        storage.load((1,))  # cold: every chunk misses and decompresses
        assert storage.block_cache_misses == n_chunks
        assert storage.chunks_decompressed == n_chunks
        assert storage.block_cache_hits == 0
        storage.load((1,))  # hot: every chunk hits
        assert storage.block_cache_hits == n_chunks
        assert storage.block_cache_misses == n_chunks
        # the invariant the bench reports rest on
        accesses = storage.block_cache_hits + storage.block_cache_misses
        assert accesses == 2 * n_chunks
        assert storage.chunks_decompressed == storage.block_cache_misses

    def test_cache_disabled_always_misses(self, tmp_path):
        storage = DiskStorage(
            tmp_path / "cells", chunk_raw_bytes=64, cache_bytes=0
        )
        storage.save((1,), [_record(i) for i in range(20)])
        storage.reset_accounting()
        storage.load((1,))
        storage.load((1,))
        assert storage.block_cache_hits == 0
        assert storage.chunks_decompressed == storage.block_cache_misses
        assert storage.block_cache_misses > 0

    def test_save_invalidates_cached_chunks(self, tmp_path):
        storage = DiskStorage(tmp_path / "cells")
        storage.save((1,), [_record(1), _record(2)])
        storage.load((1,))  # populate the cache
        storage.save((1,), [_record(3)])  # replace the cell
        assert [r.oid for r in storage.load((1,))] == [3]

    def test_cached_load_charges_logical_read(self, tmp_path):
        storage = DiskStorage(tmp_path / "cells")
        storage.save((1,), [_record(1)])
        storage.reset_accounting()
        storage.load((1,))
        storage.load((1,))  # served from cache...
        assert storage.reads == 2  # ...but still a logical read
        # physical bytes were read once (cold load only)
        assert storage.bytes_read > 0
        cold_bytes = storage.bytes_read
        storage.load((1,))
        assert storage.bytes_read == cold_bytes


class TestManifest:
    def test_manifest_is_valid_json_with_chunk_index(self, tmp_path):
        storage = DiskStorage(tmp_path / "cells", chunk_raw_bytes=64)
        storage.save((1, 2), [_record(i) for i in range(20)])
        document = json.loads(
            (tmp_path / "cells" / "manifest.json").read_text()
        )
        assert document["version"] == 1
        (cell,) = document["cells"]
        assert cell["id"] == {"t": [1, 2]}
        assert cell["count"] == 20
        assert len(cell["chunks"]) > 1

    def test_append_commits_manifest(self, tmp_path):
        storage = DiskStorage(tmp_path / "cells")
        storage.save((1,), [_record(1)])
        storage.append_many((1,), [_record(2), _record(3)])
        document = json.loads(
            (tmp_path / "cells" / "manifest.json").read_text()
        )
        assert document["cells"][0]["count"] == 3

    def test_manifest_writes_counter(self, tmp_path):
        storage = DiskStorage(tmp_path / "cells")
        storage.reset_accounting()
        storage.save_many({(i,): [_record(i)] for i in range(5)})
        assert storage.manifest_writes == 1  # one commit for the batch
        storage.save((9,), [_record(9)])
        assert storage.manifest_writes == 2


class TestDiskConcurrentReaders:
    def test_parallel_loads_account_exactly(self, tmp_path):
        """Any number of concurrent readers (the server's shared-lock
        search path) must keep cache and I/O accounting exact; writers
        are exclusive at the server's ReadWriteLock, which is the
        discipline the mutating methods assume."""
        storage = DiskStorage(tmp_path / "cells", chunk_raw_bytes=64)
        for cell in range(4):
            storage.save((cell,), [_record(cell * 10 + i) for i in range(10)])
        n_chunks = {
            cell: len(storage._catalog[(cell,)].chunks) for cell in range(4)
        }
        storage.reset_accounting()
        n_threads, n_rounds = 8, 5
        errors = []

        def reader():
            try:
                for _ in range(n_rounds):
                    for cell in range(4):
                        records = storage.load((cell,))
                        assert len(records) == 10
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        total_loads = n_threads * n_rounds * 4
        assert storage.reads == total_loads
        accesses = storage.block_cache_hits + storage.block_cache_misses
        assert accesses == n_threads * n_rounds * sum(n_chunks.values())
        assert storage.chunks_decompressed == storage.block_cache_misses
