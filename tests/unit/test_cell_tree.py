"""Unit tests for repro.mindex.cell_tree."""

import numpy as np
import pytest

from repro.core.records import IndexedRecord
from repro.exceptions import IndexError_
from repro.mindex.cell_tree import CellTree, InternalCell, LeafCell


def _record(oid: int, permutation, distances=None) -> IndexedRecord:
    return IndexedRecord(
        oid, np.array(permutation, dtype=np.int32), distances, b"p"
    )


class TestLeafCell:
    def test_note_record_updates_count(self):
        leaf = LeafCell((0,))
        leaf.note_record(_record(1, [0, 1, 2], np.array([1.0, 2.0, 3.0])))
        assert leaf.count == 1

    def test_intervals_track_prefix_pivot_distances(self):
        leaf = LeafCell((2,))
        leaf.note_record(_record(1, [2, 0, 1], np.array([5.0, 6.0, 1.0])))
        leaf.note_record(_record(2, [2, 1, 0], np.array([9.0, 8.0, 3.0])))
        assert leaf.intervals == [[1.0, 3.0]]

    def test_record_without_distances_disables_intervals(self):
        leaf = LeafCell((0,))
        leaf.note_record(_record(1, [0, 1], np.array([1.0, 2.0])))
        leaf.note_record(_record(2, [0, 1]))
        assert leaf.intervals is None
        # further records are fine
        leaf.note_record(_record(3, [0, 1], np.array([0.5, 2.0])))
        assert leaf.count == 3

    def test_rebuild_from(self):
        leaf = LeafCell((1,))
        records = [
            _record(1, [1, 0], np.array([4.0, 2.0])),
            _record(2, [1, 0], np.array([6.0, 3.0])),
        ]
        leaf.rebuild_from(records)
        assert leaf.count == 2
        assert leaf.intervals == [[2.0, 3.0]]


class TestCellTree:
    def test_starts_as_single_root_leaf(self):
        tree = CellTree(5, 3)
        assert isinstance(tree.root, LeafCell)
        assert tree.root.prefix == ()
        assert tree.leaves() == [tree.root]

    def test_validation(self):
        with pytest.raises(IndexError_):
            CellTree(0, 1)
        with pytest.raises(IndexError_):
            CellTree(5, 0)
        with pytest.raises(IndexError_):
            CellTree(5, 6)

    def test_locate_on_root_leaf(self):
        tree = CellTree(4, 2)
        leaf = tree.locate_leaf(np.array([2, 0, 1, 3]))
        assert leaf is tree.root

    def test_split_partitions_by_next_permutation_element(self):
        tree = CellTree(3, 2)
        records = [
            _record(1, [0, 1, 2]),
            _record(2, [0, 2, 1]),
            _record(3, [1, 0, 2]),
        ]
        groups = tree.split_leaf(tree.root, records)
        assert set(groups.keys()) == {0, 1}
        assert [r.oid for r in groups[0][1]] == [1, 2]
        assert [r.oid for r in groups[1][1]] == [3]
        assert isinstance(tree.root, InternalCell)

    def test_locate_after_split(self):
        tree = CellTree(3, 2)
        records = [_record(1, [0, 1, 2]), _record(2, [1, 0, 2])]
        tree.split_leaf(tree.root, records)
        leaf = tree.locate_leaf(np.array([0, 2, 1]))
        assert leaf.prefix == (0,)
        leaf2 = tree.locate_leaf(np.array([2, 1, 0]))
        assert leaf2.prefix == (2,)  # created on demand

    def test_nested_split(self):
        tree = CellTree(4, 3)
        first = [_record(i, [0, 1, 2, 3]) for i in range(3)]
        groups = tree.split_leaf(tree.root, first)
        child = groups[0][0]
        second = [
            _record(10, [0, 1, 2, 3]),
            _record(11, [0, 2, 1, 3]),
        ]
        child_groups = tree.split_leaf(child, second)
        assert set(child_groups.keys()) == {1, 2}
        deep = tree.locate_leaf(np.array([0, 2, 3, 1]))
        assert deep.prefix == (0, 2)

    def test_split_beyond_max_level_rejected(self):
        tree = CellTree(3, 1)
        tree.split_leaf(tree.root, [_record(1, [0, 1, 2])])
        leaf = tree.locate_leaf(np.array([0, 1, 2]))
        with pytest.raises(IndexError_):
            tree.split_leaf(leaf, [_record(1, [0, 1, 2])])

    def test_leaves_enumeration_after_splits(self):
        tree = CellTree(3, 2)
        records = [
            _record(1, [0, 1, 2]),
            _record(2, [1, 2, 0]),
            _record(3, [2, 0, 1]),
        ]
        tree.split_leaf(tree.root, records)
        prefixes = sorted(leaf.prefix for leaf in tree.leaves())
        assert prefixes == [(0,), (1,), (2,)]

    def test_split_intervals_rebuilt_per_child(self):
        tree = CellTree(3, 2)
        records = [
            _record(1, [0, 1, 2], np.array([1.0, 5.0, 9.0])),
            _record(2, [0, 2, 1], np.array([2.0, 9.0, 5.0])),
        ]
        groups = tree.split_leaf(tree.root, records)
        child, child_records = groups[0]
        assert len(child_records) == 2
        assert child.intervals == [[1.0, 2.0]]

    def test_records_and_depth_statistics(self):
        tree = CellTree(3, 2)
        tree.root.note_record(_record(1, [0, 1, 2]))
        assert tree.n_records == 1
        assert tree.depth == 0
        tree.split_leaf(tree.root, [_record(1, [0, 1, 2])])
        assert tree.depth == 1

    def test_iter_nodes_visits_everything(self):
        tree = CellTree(3, 2)
        tree.split_leaf(
            tree.root, [_record(1, [0, 1, 2]), _record(2, [1, 0, 2])]
        )
        nodes = list(tree.iter_nodes())
        internals = [n for n in nodes if isinstance(n, InternalCell)]
        leaves = [n for n in nodes if isinstance(n, LeafCell)]
        assert len(internals) == 1
        assert len(leaves) == 2
