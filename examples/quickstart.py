"""Quickstart: outsource an encrypted collection and search it.

Run:  python examples/quickstart.py

Walks the full paper workflow in ~30 lines of user code:

1. the data owner builds a similarity cloud (untrusted server + secret
   key holding the pivots and an AES key),
2. the construction phase encrypts and uploads the collection,
3. an authorized client runs an approximate k-NN query: the server
   returns a pre-ranked *encrypted* candidate set, the client decrypts
   and refines,
4. the per-component costs (the rows of the paper's tables) are printed.
"""

import numpy as np

from repro import L1Distance, SimilarityCloud, Strategy

rng = np.random.default_rng(7)

# a toy collection of 2,000 17-dimensional vectors (think: gene
# expression profiles), plus one query object
collection = rng.normal(size=(2000, 17))
query = rng.normal(size=17)

# -- data owner: build the deployment and outsource ----------------------
cloud = SimilarityCloud.build(
    collection,
    distance=L1Distance(),
    n_pivots=20,          # pivots become part of the secret key
    bucket_capacity=100,  # M-Index leaf capacity
    strategy=Strategy.APPROXIMATE,
    seed=42,
)
cloud.owner.outsource(range(len(collection)), collection, bulk_size=1000)
print(f"outsourced {len(cloud.server.index)} encrypted objects "
      f"into {cloud.server.index.n_cells} Voronoi cells")

# -- authorized client: search -------------------------------------------
client = cloud.new_client()          # receives the secret key
hits = client.knn_search(query, k=10, cand_size=200)

print("\n10-NN results (oid, distance):")
for hit in hits:
    print(f"  {hit.oid:5d}  {hit.distance:8.3f}")

# ground truth check
true_dists = np.abs(collection - query).sum(axis=1)
true_top = set(np.argsort(true_dists)[:10])
found = len({h.oid for h in hits} & true_top)
print(f"\nrecall vs brute force: {found * 10}% "
      f"(candidate set = 10% of the collection)")

# -- the price of privacy -------------------------------------------------
report = client.report()
print("\nper-query cost components (paper's table rows):")
for key, value in report.as_dict().items():
    if key.endswith("_time"):
        print(f"  {key:22s} {value * 1e3:8.3f} ms")
print(f"  {'communication cost':22s} {report.communication_kb:8.3f} kB")
