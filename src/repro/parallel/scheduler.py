"""Global task queue + per-worker local buffers + ordered merge.

The scheduler follows the CoZip shape: a kernel call is sliced into
tasks with *fixed* ids covering ``range(total)`` in order, workers pull
tasks from one global queue and append ``(task, result)`` pairs to
their own local buffer (no cross-worker synchronisation on the hot
path), and once the batch drains, the caller merges the buffers sorted
by task id, writing each slice into a preallocated output at the
task's own offset. Nothing is ever accumulated across tasks, so the
merged result is byte-identical to the serial pass regardless of the
worker count or the order in which workers happened to finish.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.exceptions import ParallelError, ReproError

__all__ = [
    "GLOBAL_STATS",
    "SchedulerStats",
    "TaskSlice",
    "WorkerPool",
    "slice_tasks",
]


@dataclass(frozen=True)
class TaskSlice:
    """One fixed slice ``[start, stop)`` of a kernel's index range."""

    task_id: int
    start: int
    stop: int

    def __len__(self) -> int:
        return self.stop - self.start


def slice_tasks(
    total: int,
    workers: int,
    *,
    min_items: int = 1,
    tasks_per_worker: int = 4,
) -> list[TaskSlice]:
    """Slice ``range(total)`` into deterministic, ordered tasks.

    The task list depends only on the arguments — never on timing — so
    two runs with the same worker count produce the same slicing, and
    any slicing produces the same merged output (each task writes only
    its own ``[start, stop)`` rows). Slices are contiguous, in order,
    and cover the range exactly; each holds at least ``min_items``
    items (except when ``total`` itself is smaller). ``tasks_per_worker``
    oversubscribes the queue so a slow worker cannot straggle the batch.
    """
    if total <= 0:
        return []
    if min_items < 1:
        raise ParallelError(f"min_items must be >= 1, got {min_items}")
    if workers <= 1:
        return [TaskSlice(0, 0, total)]
    n_tasks = min(workers * tasks_per_worker, max(1, total // min_items))
    n_tasks = max(1, min(n_tasks, total))
    base, extra = divmod(total, n_tasks)
    tasks: list[TaskSlice] = []
    start = 0
    for task_id in range(n_tasks):
        stop = start + base + (1 if task_id < extra else 0)
        tasks.append(TaskSlice(task_id, start, stop))
        start = stop
    assert start == total
    return tasks


class SchedulerStats:
    """Thread-safe counters describing parallel kernel activity.

    ``kernel_tasks`` counts task slices executed on the pool,
    ``kernel_parallel_batches`` counts kernel calls that actually took
    the parallel path, and ``kernel_workers`` is the worker count of
    the most recent parallel batch (0 until one runs). The counters are
    process-global on purpose: in-process deployments share one
    scheduler between client and server, exactly like the real cores.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tasks = 0
        self._batches = 0
        self._workers = 0

    def record_batch(self, n_tasks: int, workers: int) -> None:
        """Record one parallel batch of ``n_tasks`` tasks."""
        with self._lock:
            self._tasks += n_tasks
            self._batches += 1
            self._workers = workers

    def snapshot(self) -> dict[str, int]:
        """Copy of the counters under the canonical names."""
        with self._lock:
            return {
                "kernel_tasks": self._tasks,
                "kernel_parallel_batches": self._batches,
                "kernel_workers": self._workers,
            }

    def reset(self) -> None:
        """Zero all counters (tests and benches)."""
        with self._lock:
            self._tasks = 0
            self._batches = 0
            self._workers = 0


#: the one scheduler-wide stats object, exported through ``costs.py``
#: names, the server ``stats`` RPC and the client report extras.
GLOBAL_STATS = SchedulerStats()


class _Batch:
    """One kernel call in flight: tasks, local buffers, completion latch."""

    __slots__ = ("compute", "buffers", "errors", "remaining", "lock", "done")

    def __init__(self, compute: Callable[[TaskSlice], Any], n_workers: int,
                 n_tasks: int) -> None:
        self.compute = compute
        self.buffers: list[list[tuple[TaskSlice, Any]]] = [
            [] for _ in range(n_workers)
        ]
        self.errors: list[BaseException] = []
        self.remaining = n_tasks
        self.lock = threading.Lock()
        self.done = threading.Event()

    def finish_one(self) -> None:
        with self.lock:
            self.remaining -= 1
            if self.remaining == 0:
                self.done.set()


class WorkerPool:
    """Persistent daemon worker threads around one global task queue.

    Each worker loops: pull ``(batch, task)`` from the global queue,
    run ``batch.compute(task)``, append the result to its *own* local
    buffer. The pool is reused across kernel calls (threads are created
    once), and multiple batches may be in flight concurrently — each
    batch has its own buffers and completion latch.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ParallelError(f"worker count must be >= 1, got {workers}")
        self.workers = workers
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(index,),
                name=f"repro-kernel-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    def _worker_loop(self, worker_index: int) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                return
            batch, task = item
            try:
                result = batch.compute(task)
            except BaseException as exc:  # noqa: BLE001 - surfaced to caller
                with batch.lock:
                    batch.errors.append(exc)
            else:
                batch.buffers[worker_index].append((task, result))
            batch.finish_one()

    def run(
        self,
        tasks: Sequence[TaskSlice],
        compute: Callable[[TaskSlice], Any],
    ) -> list[tuple[TaskSlice, Any]]:
        """Run ``compute`` over ``tasks``; return results in task order.

        Worker exceptions abort the batch: a library error
        (:class:`ReproError`) is re-raised unchanged so callers observe
        the same exception the serial path would have raised, anything
        else is wrapped in :class:`ParallelError`.
        """
        if not tasks:
            return []
        batch = _Batch(compute, self.workers, len(tasks))
        for task in tasks:
            self._queue.put((batch, task))
        batch.done.wait()
        if batch.errors:
            error = batch.errors[0]
            if isinstance(error, ReproError):
                raise error
            raise ParallelError(
                f"kernel worker crashed: {type(error).__name__}: {error}"
            ) from error
        merged = [pair for buffer in batch.buffers for pair in buffer]
        merged.sort(key=lambda pair: pair[0].task_id)
        return merged

    def shutdown(self) -> None:
        """Stop all worker threads (used when the pool is resized)."""
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5.0)
