#!/usr/bin/env python
"""lint-docs: execute every fenced ``python`` snippet in the docs.

Documentation that cannot run is documentation that drifts. This tool
extracts each ```python fenced block from README.md and docs/*.md and
runs it in a fresh interpreter with ``src`` on the path, failing on the
first snippet that raises. Blocks fenced as ``bash``/``text``/untyped
and blocks immediately preceded by an HTML comment containing
``lint-docs: skip`` are not executed.

Usage:  python tools/lint_docs.py [file.md ...]
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
DEFAULT_FILES = ["README.md", "docs/ARCHITECTURE.md", "docs/BENCHMARKS.md"]

_FENCE = re.compile(
    r"^```python[^\n]*\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)
_SKIP_MARK = "lint-docs: skip"


def extract_snippets(text: str) -> list[tuple[int, str]]:
    """(line number, code) for every runnable python fence in ``text``."""
    snippets = []
    for match in _FENCE.finditer(text):
        preceding = text[: match.start()].rstrip().rsplit("\n", 1)[-1]
        if _SKIP_MARK in preceding:
            continue
        line = text[: match.start()].count("\n") + 1
        snippets.append((line, match.group(1)))
    return snippets


def run_snippet(source: Path, line: int, code: str) -> bool:
    """Execute one snippet; returns True on success."""
    env = dict(os.environ)
    src_dir = str(ROOT / "src")
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_dir if not existing else src_dir + os.pathsep + existing
    )
    with tempfile.NamedTemporaryFile(
        "w", suffix=".py", delete=False
    ) as handle:
        handle.write(code)
        path = handle.name
    try:
        result = subprocess.run(
            [sys.executable, path],
            env=env,
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=300,
        )
    finally:
        os.unlink(path)
    label = f"{source.relative_to(ROOT)}:{line}"
    if result.returncode != 0:
        print(f"FAIL {label}")
        sys.stdout.write(result.stdout)
        sys.stderr.write(result.stderr)
        return False
    print(f"ok   {label}")
    return True


def main(argv: list[str]) -> int:
    files = [Path(a) for a in argv] if argv else [
        ROOT / name for name in DEFAULT_FILES
    ]
    failures = 0
    total = 0
    for path in files:
        if not path.exists():
            print(f"FAIL {path}: file does not exist")
            failures += 1
            continue
        for line, code in extract_snippets(path.read_text()):
            total += 1
            if not run_snippet(path, line, code):
                failures += 1
    print(f"{total - failures}/{total} snippets ran clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
