"""Unit tests for repro.net.rpc."""

import pytest

from repro.exceptions import ProtocolError, QueryError
from repro.net.channel import InProcessChannel
from repro.net.rpc import RpcClient, RpcDispatcher
from repro.wire.encoding import Reader, Writer


def _echo(body: Reader) -> Writer:
    return Writer().blob(body.blob())


def _fail(body: Reader) -> Writer:
    raise QueryError("deliberate failure")


def _make_pair():
    dispatcher = RpcDispatcher()
    dispatcher.register("echo", _echo)
    dispatcher.register("fail", _fail)
    client = RpcClient(InProcessChannel(dispatcher.handle))
    return dispatcher, client


class TestDispatch:
    def test_echo_roundtrip(self):
        _dispatcher, client = _make_pair()
        reader = client.call("echo", Writer().blob(b"payload"))
        assert reader.blob() == b"payload"

    def test_unknown_method_raises_client_side(self):
        _dispatcher, client = _make_pair()
        with pytest.raises(ProtocolError, match="unknown method"):
            client.call("nope")

    def test_library_errors_become_responses(self):
        _dispatcher, client = _make_pair()
        with pytest.raises(ProtocolError, match="deliberate failure"):
            client.call("fail")

    def test_duplicate_registration_rejected(self):
        dispatcher = RpcDispatcher()
        dispatcher.register("m", _echo)
        with pytest.raises(ProtocolError):
            dispatcher.register("m", _echo)

    def test_non_library_exception_propagates(self):
        dispatcher = RpcDispatcher()

        def boom(body: Reader) -> Writer:
            raise RuntimeError("bug")

        dispatcher.register("boom", boom)
        client = RpcClient(InProcessChannel(dispatcher.handle))
        with pytest.raises(RuntimeError):
            client.call("boom")


class TestAccounting:
    def test_server_time_accumulates_on_both_sides(self):
        dispatcher, client = _make_pair()
        client.call("echo", Writer().blob(b"a"))
        client.call("echo", Writer().blob(b"b"))
        assert dispatcher.calls == 2
        assert client.calls == 2
        assert client.server_time == pytest.approx(
            dispatcher.server_time, abs=1e-9
        )
        assert dispatcher.server_time >= 0.0

    def test_error_calls_still_count_server_time(self):
        dispatcher, client = _make_pair()
        with pytest.raises(ProtocolError):
            client.call("fail")
        assert dispatcher.calls == 1

    def test_reset_accounting(self):
        dispatcher, client = _make_pair()
        client.call("echo", Writer().blob(b"a"))
        client.reset_accounting()
        dispatcher.reset_accounting()
        assert client.server_time == 0.0
        assert client.channel.bytes_total == 0
        assert dispatcher.server_time == 0.0

    def test_bytes_body_accepted(self):
        _dispatcher, client = _make_pair()
        raw = Writer().blob(b"inline").getvalue()
        assert client.call("echo", raw).blob() == b"inline"


class TestIdempotency:
    def _counting_pair(self, *, capacity=4096):
        executions = []

        def bump(body: Reader) -> Writer:
            value = body.u32()
            executions.append(value)
            return Writer().u32(len(executions))

        dispatcher = RpcDispatcher()
        dispatcher.register("bump", bump)
        dispatcher.enable_idempotency(capacity=capacity)
        client = RpcClient(InProcessChannel(dispatcher.handle))
        return dispatcher, client, executions

    def test_keyless_envelope_is_bit_identical(self):
        from repro.net.rpc import encode_request

        legacy = Writer().string("echo").blob(b"body").getvalue()
        assert encode_request("echo", b"body") == legacy
        assert encode_request("echo", b"body", idempotency_key=9) != legacy

    def test_duplicate_key_replays_not_reexecutes(self):
        dispatcher, client, executions = self._counting_pair()
        first = client.call("bump", Writer().u32(1), idempotency_key=42).u32()
        replay = client.call("bump", Writer().u32(1), idempotency_key=42).u32()
        assert executions == [1]
        assert first == replay == 1
        assert dispatcher.dedup_hits == 1

    def test_distinct_keys_execute_independently(self):
        dispatcher, client, executions = self._counting_pair()
        client.call("bump", Writer().u32(1), idempotency_key=1)
        client.call("bump", Writer().u32(2), idempotency_key=2)
        assert executions == [1, 2]
        assert dispatcher.dedup_hits == 0

    def test_keyless_calls_never_deduplicate(self):
        dispatcher, client, executions = self._counting_pair()
        client.call("bump", Writer().u32(1))
        client.call("bump", Writer().u32(1))
        assert executions == [1, 1]
        assert dispatcher.dedup_hits == 0

    def test_error_responses_replay_too(self):
        dispatcher = RpcDispatcher()
        calls = []

        def fragile(body: Reader) -> Writer:
            calls.append(1)
            raise QueryError("always fails")

        dispatcher.register("fragile", fragile)
        dispatcher.enable_idempotency()
        client = RpcClient(InProcessChannel(dispatcher.handle))
        for _ in range(2):
            with pytest.raises(ProtocolError, match="always fails"):
                client.call("fragile", idempotency_key=5)
        # the handler ran once; the second response came from the cache
        assert calls == [1]
        assert dispatcher.dedup_hits == 1

    def test_bounded_cache_evicts_oldest(self):
        dispatcher, client, executions = self._counting_pair(capacity=2)
        client.call("bump", Writer().u32(1), idempotency_key=1)
        client.call("bump", Writer().u32(2), idempotency_key=2)
        client.call("bump", Writer().u32(3), idempotency_key=3)  # evicts 1
        client.call("bump", Writer().u32(1), idempotency_key=1)  # re-runs
        assert executions == [1, 2, 3, 1]
        assert dispatcher.dedup_hits == 0

    def test_concurrent_duplicates_execute_once(self):
        import threading

        gate = threading.Event()
        executions = []

        def slow(body: Reader) -> Writer:
            executions.append(1)
            gate.wait(5)
            return Writer().u32(7)

        dispatcher = RpcDispatcher()
        dispatcher.register("slow", slow)
        dispatcher.enable_idempotency()
        client = RpcClient(InProcessChannel(dispatcher.handle))
        results = []

        def call():
            results.append(client.call("slow", idempotency_key=11).u32())

        threads = [threading.Thread(target=call) for _ in range(4)]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.2)
        gate.set()
        for thread in threads:
            thread.join(10)
        assert results == [7, 7, 7, 7]
        assert executions == [1]
        assert dispatcher.dedup_hits == 3

    def test_reset_accounting_zeros_dedup_hits(self):
        dispatcher, client, _ = self._counting_pair()
        client.call("bump", Writer().u32(1), idempotency_key=1)
        client.call("bump", Writer().u32(1), idempotency_key=1)
        assert dispatcher.dedup_hits == 1
        dispatcher.reset_accounting()
        assert dispatcher.dedup_hits == 0

    def test_invalid_capacity_rejected(self):
        dispatcher = RpcDispatcher()
        with pytest.raises(ProtocolError, match="capacity"):
            dispatcher.enable_idempotency(capacity=0)
