"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the failure domain (metric, crypto,
index, protocol, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the ``repro`` library."""


class MetricError(ReproError):
    """A metric-space operation received invalid input.

    Examples: dimensionality mismatch between two vectors, a distance
    function that is not defined for the given domain, or a violated
    metric postulate detected by :func:`repro.metric.space.check_metric`.
    """


class PivotError(MetricError):
    """Pivot selection or pivot-permutation computation failed."""


class CryptoError(ReproError):
    """Base class for encryption-layer failures."""


class KeyError_(CryptoError):
    """A cipher key has an invalid length or malformed serialization.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`KeyError`.
    """


class PaddingError(CryptoError):
    """PKCS#7 unpadding encountered corrupt padding bytes."""


class AuthenticationError(CryptoError):
    """Ciphertext failed its integrity check (HMAC mismatch).

    Raised by :class:`repro.crypto.cipher.AesCipher` when a ciphertext has
    been tampered with or decrypted with the wrong key.
    """


class StorageError(ReproError):
    """A bucket/storage backend operation failed."""


class BucketCapacityError(StorageError):
    """An insert would exceed a bucket's fixed capacity and cannot split."""


class IndexError_(ReproError):
    """Base class for M-Index structural failures.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`.
    """


class ProtocolError(ReproError):
    """A wire message could not be encoded or decoded."""


class ChannelError(ReproError):
    """A network channel failed to transmit or the peer closed."""


class ServerBusyError(ChannelError):
    """The server shed this request because its queue was full.

    Raised on the client when the async server's load-shedding limit
    (``max_pending``) is hit or the server is draining for shutdown;
    the request was never dispatched, so the caller may safely retry
    after backing off.
    """


class DeadlineExceededError(ChannelError):
    """A request's per-RPC deadline budget expired before it completed.

    Raised either client-side (no response arrived within the budget)
    or server-side (the request was still queued when its budget ran
    out, so the server shed it unexecuted). The budget is spent, so
    retry layers must *not* retry this error — the caller decides
    whether a fresh deadline is warranted.
    """


class RetryExhaustedError(ChannelError):
    """A retried RPC failed on every attempt the policy allowed.

    The last underlying failure is chained as ``__cause__``.
    """


class CircuitOpenError(ChannelError):
    """The client's circuit breaker is open: calls fail fast.

    Raised without touching the network after the breaker's failure
    threshold was reached, until its reset timeout elapses and a probe
    call is allowed through.
    """


class ShardUnavailableError(ChannelError):
    """A cluster shard could not be reached (retries exhausted or its
    circuit breaker is open).

    Raised by the shard router when a shard holding part of the queried
    prefix range is down. In strict mode (the default) the whole
    scatter fails with this error; with ``allow_partial`` the router
    skips the shard, serves the surviving prefix ranges, and counts the
    degradation in ``shards_skipped``. The underlying failure is
    chained as ``__cause__``.
    """

    def __init__(self, message: str, shard: int | None = None) -> None:
        super().__init__(message)
        #: index of the unreachable shard in the shard map
        self.shard = shard


class QueryError(ReproError):
    """A similarity query was malformed (e.g. negative radius, k < 1)."""


class AuthorizationError(ReproError):
    """An operation requiring the secret key was attempted without one."""


class DatasetError(ReproError):
    """A dataset generator or registry lookup received invalid parameters."""


class EvaluationError(ReproError):
    """The experiment harness was configured inconsistently."""


class ParallelError(ReproError):
    """The kernel scheduler itself failed.

    Raised when a worker crashes with a non-library exception, when a
    process worker dies, or when the ``REPRO_KERNEL_WORKERS`` /
    ``REPRO_KERNEL_BACKEND`` knobs are set to unparseable values.
    Library errors (:class:`ReproError` subclasses) raised *inside* a
    worker are re-raised as themselves so parallel execution never
    changes which exception a caller observes.
    """
