"""Unit tests for repro.crypto.padding (PKCS#7)."""

import pytest

from repro.crypto.padding import pkcs7_pad, pkcs7_unpad
from repro.exceptions import PaddingError


class TestPad:
    def test_pads_to_block_multiple(self):
        assert len(pkcs7_pad(b"abc", 16)) == 16
        assert len(pkcs7_pad(b"a" * 16, 16)) == 32  # full block appended

    def test_padding_byte_values(self):
        padded = pkcs7_pad(b"abc", 8)
        assert padded == b"abc" + bytes([5]) * 5

    def test_empty_input(self):
        assert pkcs7_pad(b"", 8) == bytes([8]) * 8

    def test_invalid_block_size(self):
        with pytest.raises(PaddingError):
            pkcs7_pad(b"x", 0)
        with pytest.raises(PaddingError):
            pkcs7_pad(b"x", 256)


class TestUnpad:
    def test_roundtrip(self):
        for length in range(0, 50):
            data = bytes(range(length % 256))[:length]
            assert pkcs7_unpad(pkcs7_pad(data, 16), 16) == data

    def test_corrupt_final_byte(self):
        padded = bytearray(pkcs7_pad(b"hello", 16))
        padded[-1] = 0
        with pytest.raises(PaddingError):
            pkcs7_unpad(bytes(padded), 16)

    def test_inconsistent_padding_bytes(self):
        bad = b"hello" + bytes([1] * 10) + bytes([11])
        with pytest.raises(PaddingError):
            pkcs7_unpad(bad, 16)

    def test_wrong_length_rejected(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"12345", 16)

    def test_empty_rejected(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"", 16)

    def test_pad_length_exceeding_block_rejected(self):
        bad = bytes([17] * 16)
        with pytest.raises(PaddingError):
            pkcs7_unpad(bad, 16)
