"""Metric lower/upper bounds for pivot-based filtering.

These are the textbook triangle-inequality bounds (Zezula et al., chapter
"Similarity Search: The Metric Space Approach") that the M-Index server
applies in Algorithm 3, lines 5–7:

* lower bound: ``d(q, o) >= max_i |d(q, p_i) - d(o, p_i)|``
* upper bound: ``d(q, o) <= min_i (d(q, p_i) + d(o, p_i))``

An object can be discarded from a range-query candidate set whenever its
lower bound exceeds the radius — without ever computing ``d(q, o)``.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import MetricError

__all__ = [
    "pivot_filter_lower_bound",
    "pivot_filter_upper_bound",
    "pivot_filter_lower_bounds",
    "pivot_filter_upper_bounds",
]


def pivot_filter_lower_bound(
    query_distances: np.ndarray, object_distances: np.ndarray
) -> float:
    """Largest triangle-inequality lower bound on ``d(q, o)``."""
    q, o = _pair(query_distances, object_distances)
    return float(np.abs(q - o).max())


def pivot_filter_upper_bound(
    query_distances: np.ndarray, object_distances: np.ndarray
) -> float:
    """Smallest triangle-inequality upper bound on ``d(q, o)``."""
    q, o = _pair(query_distances, object_distances)
    return float((q + o).min())


def pivot_filter_lower_bounds(
    query_distances: np.ndarray, object_distance_matrix: np.ndarray
) -> np.ndarray:
    """Vectorized lower bounds for many objects at once.

    ``object_distance_matrix`` has one row of pivot distances per object.
    """
    q, m = _matrix(query_distances, object_distance_matrix)
    return np.abs(m - q).max(axis=1)


def pivot_filter_upper_bounds(
    query_distances: np.ndarray, object_distance_matrix: np.ndarray
) -> np.ndarray:
    """Vectorized upper bounds for many objects at once."""
    q, m = _matrix(query_distances, object_distance_matrix)
    return (m + q).min(axis=1)


def _pair(q: np.ndarray, o: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    q = np.asarray(q, dtype=np.float64)
    o = np.asarray(o, dtype=np.float64)
    if q.ndim != 1 or o.ndim != 1 or q.shape != o.shape or q.shape[0] == 0:
        raise MetricError(
            f"pivot distance vectors must be equal-length 1-D arrays, "
            f"got {q.shape} and {o.shape}"
        )
    return q, o


def _matrix(q: np.ndarray, m: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    q = np.asarray(q, dtype=np.float64)
    m = np.asarray(m, dtype=np.float64)
    if m.ndim == 1:
        m = m.reshape(1, -1)
    if q.ndim != 1 or m.ndim != 2 or m.shape[1] != q.shape[0]:
        raise MetricError(
            f"shape mismatch: query {q.shape} vs matrix {m.shape}"
        )
    return q, m
