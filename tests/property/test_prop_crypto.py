"""Property-based tests for the crypto substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.aes import AesKey, decrypt_block, encrypt_block
from repro.crypto.cipher import AesCipher
from repro.crypto.modes import (
    cbc_decrypt,
    cbc_encrypt,
    ctr_transform,
    ctr_transform_many,
)
from repro.crypto.padding import pkcs7_pad, pkcs7_unpad

keys = st.binary(min_size=16, max_size=16) | st.binary(
    min_size=32, max_size=32
)
blocks = st.binary(min_size=16, max_size=16)
messages = st.binary(min_size=0, max_size=300)
nonces = st.binary(min_size=16, max_size=16)


@settings(max_examples=50, deadline=None)
@given(key=keys, block=blocks)
def test_block_cipher_roundtrip(key, block):
    aes = AesKey(key)
    assert decrypt_block(aes, encrypt_block(aes, block)) == block


@settings(max_examples=50, deadline=None)
@given(key=keys, block=blocks)
def test_block_cipher_is_not_identity(key, block):
    aes = AesKey(key)
    ct = encrypt_block(aes, block)
    assert len(ct) == 16
    # AES has no fixed points for practical purposes; identity would be
    # a catastrophic implementation bug (e.g. missing rounds)
    assert ct != block


@settings(max_examples=50, deadline=None)
@given(key=keys, nonce=nonces, message=messages)
def test_ctr_roundtrip_any_length(key, nonce, message):
    aes = AesKey(key)
    ct = ctr_transform(aes, nonce, message)
    assert len(ct) == len(message)
    assert ctr_transform(aes, nonce, ct) == message


@settings(max_examples=30, deadline=None)
@given(
    key=keys,
    parts=st.lists(st.tuples(nonces, messages), min_size=0, max_size=8),
)
def test_ctr_many_equals_singles(key, parts):
    aes = AesKey(key)
    bulk = ctr_transform_many(
        aes, [n for n, _ in parts], [m for _, m in parts]
    )
    singles = [ctr_transform(aes, n, m) for n, m in parts]
    assert bulk == singles


@settings(max_examples=50, deadline=None)
@given(key=keys, iv=nonces, message=messages)
def test_cbc_roundtrip_with_padding(key, iv, message):
    aes = AesKey(key)
    ct = cbc_encrypt(aes, pkcs7_pad(message), iv)
    assert pkcs7_unpad(cbc_decrypt(aes, ct, iv)) == message


@settings(max_examples=100, deadline=None)
@given(message=messages, block_size=st.integers(min_value=1, max_value=255))
def test_pkcs7_roundtrip(message, block_size):
    padded = pkcs7_pad(message, block_size)
    assert len(padded) % block_size == 0
    assert len(padded) > len(message)
    assert pkcs7_unpad(padded, block_size) == message


@settings(max_examples=40, deadline=None)
@given(key=keys, message=messages)
def test_authenticated_cipher_roundtrip(key, message):
    cipher = AesCipher(key)
    token = cipher.encrypt(message)
    assert len(token) == len(message) + cipher.overhead
    assert cipher.decrypt(token) == message


@settings(max_examples=25, deadline=None)
@given(key=keys, batch=st.lists(messages, min_size=0, max_size=10))
def test_batch_cipher_equals_singles(key, batch):
    cipher = AesCipher(key)
    tokens = cipher.encrypt_many(batch)
    assert cipher.decrypt_many(tokens) == batch
    for token, message in zip(tokens, batch):
        assert cipher.decrypt(token) == message


@settings(max_examples=40, deadline=None)
@given(
    key=keys,
    message=st.binary(min_size=1, max_size=100),
    flip_byte=st.integers(min_value=0, max_value=10_000),
)
def test_any_bitflip_detected(key, message, flip_byte):
    import pytest

    from repro.exceptions import AuthenticationError

    cipher = AesCipher(key)
    token = bytearray(cipher.encrypt(message))
    position = flip_byte % len(token)
    token[position] ^= 0x01
    with pytest.raises(AuthenticationError):
        cipher.decrypt(bytes(token))
