"""Unit tests for repro.privacy (levels, attacks, analysis)."""

import numpy as np
import pytest

from repro.core.records import IndexedRecord
from repro.exceptions import EvaluationError
from repro.metric.distances import L1Distance
from repro.metric.permutations import pivot_permutation
from repro.metric.space import MetricSpace
from repro.privacy.analysis import (
    distribution_distance,
    normalized_entropy,
    prefix_entropy,
)
from repro.privacy.attacks import (
    CooccurrenceAttack,
    DistanceDistributionAttack,
    PermutationFrequencyAttack,
)
from repro.privacy.levels import (
    KNOWN_SYSTEMS,
    PrivacyLevel,
    classify_system,
)


class TestLevels:
    def test_plain_is_level_1(self):
        assert classify_system(KNOWN_SYSTEMS["plain-mindex"]) == (
            PrivacyLevel.NO_ENCRYPTION
        )

    def test_raw_encrypted_is_level_2(self):
        assert classify_system(KNOWN_SYSTEMS["raw-encrypted-mindex"]) == (
            PrivacyLevel.RAW_DATA_ENCRYPTION
        )

    def test_encrypted_mindex_is_level_3(self):
        """§4.3: both strategies of the Encrypted M-Index sit at level 3."""
        assert classify_system(
            KNOWN_SYSTEMS["encrypted-mindex-precise"]
        ) == PrivacyLevel.MS_OBJECTS_ENCRYPTION
        assert classify_system(
            KNOWN_SYSTEMS["encrypted-mindex-approximate"]
        ) == PrivacyLevel.MS_OBJECTS_ENCRYPTION

    def test_distribution_hiding_systems_are_level_4(self):
        """§5.4: the Yiu et al. schemes modify/hide distances."""
        for name in ("mpt", "fdh", "ehi", "trivial"):
            assert classify_system(KNOWN_SYSTEMS[name]) == (
                PrivacyLevel.DISTRIBUTION_ENCRYPTION
            )

    def test_levels_are_ordered(self):
        assert (
            PrivacyLevel.NO_ENCRYPTION
            < PrivacyLevel.RAW_DATA_ENCRYPTION
            < PrivacyLevel.MS_OBJECTS_ENCRYPTION
            < PrivacyLevel.DISTRIBUTION_ENCRYPTION
        )


def _records_from(data, pivots, d, with_distances):
    records = []
    for oid, vector in enumerate(data):
        dists = d.batch(vector, pivots)
        records.append(
            IndexedRecord(
                oid,
                pivot_permutation(dists),
                dists if with_distances else None,
                b"ciphertext",
            )
        )
    return records


@pytest.fixture
def clustered_setup(rng):
    d = L1Distance()
    centers = rng.normal(0.0, 10.0, size=(4, 6))
    assignment = rng.integers(0, 4, size=400)
    data = centers[assignment] + rng.normal(0.0, 0.5, size=(400, 6))
    pivots = data[rng.choice(400, 12, replace=False)]
    return data, pivots, d


class TestPermutationFrequencyAttack:
    def test_detects_clustering(self, clustered_setup, rng):
        data, pivots, d = clustered_setup
        records = _records_from(data, pivots, d, with_distances=False)
        attack = PermutationFrequencyAttack(records, prefix_length=1)
        # with 4 tight clusters and 12 pivots the biggest first-level
        # cell holds far more than a uniform 1/12 share
        assert attack.skew() > 2.0 / 12.0

    def test_uniform_data_less_skewed(self, rng):
        d = L1Distance()
        data = rng.uniform(-10, 10, size=(400, 6))
        pivots = data[rng.choice(400, 12, replace=False)]
        records = _records_from(data, pivots, d, with_distances=False)
        attack = PermutationFrequencyAttack(records, prefix_length=1)
        assert attack.skew() < 0.5

    def test_histogram_sums_to_collection(self, clustered_setup):
        data, pivots, d = clustered_setup
        records = _records_from(data, pivots, d, with_distances=False)
        attack = PermutationFrequencyAttack(records)
        assert sum(attack.cell_histogram().values()) == len(data)

    def test_top_cells_sorted(self, clustered_setup):
        data, pivots, d = clustered_setup
        records = _records_from(data, pivots, d, with_distances=False)
        top = PermutationFrequencyAttack(records).top_cells(5)
        counts = [count for _prefix, count in top]
        assert counts == sorted(counts, reverse=True)

    def test_empty_view_rejected(self):
        with pytest.raises(EvaluationError):
            PermutationFrequencyAttack([])


class TestDistanceDistributionAttack:
    def test_precise_strategy_leaks_distribution(self, clustered_setup, rng):
        data, pivots, d = clustered_setup
        records = _records_from(data, pivots, d, with_distances=True)
        attack = DistanceDistributionAttack(records)
        sample_idx = rng.choice(len(data), 100, replace=False)
        true_pairwise = np.array(
            [
                d(data[i], data[j])
                for i in sample_idx[:50]
                for j in sample_idx[50:60]
            ]
        )
        score = attack.leakage_score(true_pairwise)
        assert score > 0.5  # substantially similar distributions

    def test_approximate_strategy_closes_channel(self, clustered_setup):
        data, pivots, d = clustered_setup
        records = _records_from(data, pivots, d, with_distances=False)
        with pytest.raises(EvaluationError):
            DistanceDistributionAttack(records)

    def test_reconstructed_sample_size(self, clustered_setup):
        data, pivots, d = clustered_setup
        records = _records_from(data, pivots, d, with_distances=True)
        sample = DistanceDistributionAttack(records).reconstructed_sample()
        assert sample.shape == (len(data) * len(pivots),)


class TestCooccurrenceAttack:
    def test_graph_covers_pivots(self, clustered_setup):
        data, pivots, d = clustered_setup
        records = _records_from(data, pivots, d, with_distances=False)
        attack = CooccurrenceAttack(records, n_pivots=len(pivots))
        graph = attack.cooccurrence_graph()
        assert graph.number_of_nodes() == len(pivots)
        assert graph.number_of_edges() > 0

    def test_recovers_proximity_structure(self, clustered_setup):
        data, pivots, d = clustered_setup
        records = _records_from(data, pivots, d, with_distances=False)
        attack = CooccurrenceAttack(records, n_pivots=len(pivots))
        space = MetricSpace(L1Distance(), 6)
        score = attack.structure_score(pivots, space)
        assert score > 0.5  # better than random pairing

    def test_invalid_parameters(self, clustered_setup):
        data, pivots, d = clustered_setup
        records = _records_from(data[:5], pivots, d, with_distances=False)
        with pytest.raises(EvaluationError):
            CooccurrenceAttack(records, n_pivots=0)
        with pytest.raises(EvaluationError):
            CooccurrenceAttack(records, n_pivots=12, window=1)


class TestAnalysis:
    def test_prefix_entropy_uniform_vs_constant(self):
        constant = [np.array([0, 1, 2])] * 50
        assert prefix_entropy(constant, 1) == 0.0
        varied = [np.array([i % 4, (i + 1) % 4, (i + 2) % 4]) for i in range(48)]
        assert prefix_entropy(varied, 1) == pytest.approx(2.0)

    def test_normalized_entropy_bounds(self, clustered_setup):
        data, pivots, d = clustered_setup
        perms = [
            pivot_permutation(d.batch(v, pivots)) for v in data[:100]
        ]
        value = normalized_entropy(perms, 2, len(pivots))
        assert 0.0 <= value <= 1.0

    def test_distribution_distance_identical_zero(self, rng):
        sample = rng.normal(size=500)
        assert distribution_distance(sample, sample) == 0.0

    def test_distribution_distance_disjoint_one(self, rng):
        a = rng.normal(0.0, 0.1, size=500)
        b = rng.normal(100.0, 0.1, size=500)
        assert distribution_distance(a, b) == pytest.approx(1.0)

    def test_empty_samples_rejected(self):
        with pytest.raises(EvaluationError):
            distribution_distance(np.array([]), np.array([1.0]))
