"""Shard map, scatter–gather merges and router behavior.

The cluster's core claim is *bit-identity*: a router over N shards
answers every query with the exact response a single server would have
produced. These tests pin the pieces — the deterministic shard map,
the merge order of the candidate streams, oid dedup, strict vs
degraded shard-loss handling, and the rebalance round trip.
"""

import numpy as np
import pytest

from repro.cluster import (
    LocalShardCluster,
    ShardMap,
    ShardRouter,
    merge_stats,
)
from repro.core.records import CandidateEntry, RecordBatch
from repro.core.server import SimilarityCloudServer
from repro.exceptions import (
    ChannelError,
    ProtocolError,
    ShardUnavailableError,
)
from repro.metric.permutations import pivot_permutations
from repro.net.channel import InProcessChannel
from repro.net.resilience import RetryPolicy
from repro.net.rpc import RpcClient
from repro.wire.encoding import Reader, Writer

N_PIVOTS = 12
BUCKET = 16


# ---------------------------------------------------------------------------
# shard map


class TestShardMap:
    def test_uniform_partitions_every_pivot_once(self):
        for n_shards in (1, 2, 3, 4, 7, 12):
            shard_map = ShardMap.uniform(12, n_shards)
            owned = [shard_map.pivots_of(s) for s in range(n_shards)]
            flat = [p for pivots in owned for p in pivots]
            assert sorted(flat) == list(range(12))
            # contiguous blocks, ascending by shard
            assert flat == sorted(flat)

    def test_uniform_is_deterministic(self):
        assert ShardMap.uniform(30, 4) == ShardMap.uniform(30, 4)

    def test_wire_round_trip(self):
        shard_map = ShardMap.uniform(17, 5).moved([0, 16], 2)
        assert ShardMap.from_bytes(shard_map.to_bytes()) == shard_map

    def test_split_rows_partitions_batch(self):
        shard_map = ShardMap.uniform(10, 3)
        tops = np.array([9, 0, 5, 5, 2, 7], dtype=np.int64)
        rows = shard_map.split_rows(tops)
        assert len(rows) == 3
        together = np.sort(np.concatenate(rows))
        assert np.array_equal(together, np.arange(6))
        for shard, indices in enumerate(rows):
            assert all(
                shard_map.shard_of(int(tops[i])) == shard for i in indices
            )

    def test_moved_reassigns_without_mutating(self):
        original = ShardMap.uniform(8, 2)
        moved = original.moved([0, 1], 1)
        assert moved.shard_of(0) == 1 and moved.shard_of(1) == 1
        assert original.shard_of(0) == 0  # immutable

    def test_validation(self):
        with pytest.raises(ProtocolError):
            ShardMap.uniform(4, 5)  # more shards than pivots
        with pytest.raises(ProtocolError):
            ShardMap(2, [0, 1, 2])  # shard 2 out of range
        with pytest.raises(ProtocolError):
            ShardMap.uniform(8, 2).shard_of(8)
        with pytest.raises(ProtocolError):
            ShardMap.uniform(8, 2).split_rows(np.array([8]))


# ---------------------------------------------------------------------------
# merges (pure functions over synthetic payloads)


def test_merge_stats_sums_and_maxes():
    merged = merge_stats(
        [
            {"records": 10.0, "max_level": 2.0, "occupied_cells": 2.0},
            {"records": 30.0, "max_level": 3.0, "occupied_cells": 6.0},
        ]
    )
    assert merged["records"] == 40.0
    assert merged["max_level"] == 3.0  # structural bound: max, not sum
    assert merged["avg_occupied_bucket"] == 5.0  # 40 records / 8 cells


# ---------------------------------------------------------------------------
# router over a real cluster (in-process, plain clients)


def _make_records(n, rng, pivots=N_PIVOTS):
    distances = rng.uniform(0.0, 10.0, size=(n, pivots))
    permutations = pivot_permutations(distances)
    oids = np.arange(n, dtype=np.uint64)
    payloads = [rng.bytes(24) for _ in range(n)]
    return oids, permutations, distances, payloads


def _insert_bulk_body(oids, permutations, distances, payloads):
    batch = RecordBatch(oids, permutations, distances, payloads)
    return batch.write_to(Writer()).getvalue()


def _read_candidates(reader):
    count = reader.u32()
    return [CandidateEntry.read_from(reader) for _ in range(count)]


def _read_candidate_lists(reader):
    # the batched response dedups payloads into a unique table and
    # references it by index per query (see write_candidate_lists)
    uniques = [
        CandidateEntry(reader.u64(), reader.blob())
        for _ in range(reader.u32())
    ]
    lists = [
        [uniques[int(i)] for i in reader.i32_array()]
        for _ in range(reader.u32())
    ]
    reader.expect_end()
    return lists


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(42)
    return _make_records(500, rng)


@pytest.fixture(scope="module")
def single_server(corpus):
    server = SimilarityCloudServer(N_PIVOTS, BUCKET)
    client = RpcClient(InProcessChannel(server.handle))
    client.call("insert_bulk", _insert_bulk_body(*corpus))
    yield client
    server.close()


def _build_cluster(corpus, n_shards):
    cluster = LocalShardCluster(
        N_PIVOTS, BUCKET, n_shards=n_shards, latency=0.0, bandwidth=None
    )
    router = cluster.router(resilient=False)
    router.call("insert_bulk", _insert_bulk_body(*corpus))
    return cluster, router

def _knn_body(perm_rows, cand_size, max_cells=0):
    return (
        Writer()
        .i32_matrix(np.asarray(perm_rows, dtype=np.int32))
        .u32(cand_size)
        .u32(max_cells)
        .getvalue()
    )


@pytest.mark.parametrize("n_shards", [1, 2, 3, 4])
def test_knn_batch_bit_identical_to_single_server(
    corpus, single_server, n_shards
):
    rng = np.random.default_rng(7)
    _oids, query_perms, _d, _p = _make_records(20, rng)
    body = _knn_body(query_perms, cand_size=40, max_cells=6)
    expected = _read_candidate_lists(single_server.call("knn_batch", body))
    cluster, router = _build_cluster(corpus, n_shards)
    try:
        got = _read_candidate_lists(router.call("knn_batch", body))
        assert got == expected
        # re-encoding both through the shared writer proves the byte
        # streams (not just the decoded sets) coincide
        from repro.wire.scatter import write_candidate_lists

        assert (
            write_candidate_lists(got).getvalue()
            == write_candidate_lists(expected).getvalue()
        )
    finally:
        router.close()
        cluster.close()


@pytest.mark.parametrize("n_shards", [2, 4])
def test_range_batch_bit_identical_to_single_server(
    corpus, single_server, n_shards
):
    rng = np.random.default_rng(11)
    query_distances = rng.uniform(0.0, 10.0, size=(10, N_PIVOTS))
    body = (
        Writer().f64_matrix(query_distances).f64(6.0).getvalue()
    )
    expected = _read_candidate_lists(
        single_server.call("range_batch", body)
    )
    assert any(expected)  # the radius actually catches candidates
    cluster, router = _build_cluster(corpus, n_shards)
    try:
        got = _read_candidate_lists(router.call("range_batch", body))
        assert got == expected
    finally:
        router.close()
        cluster.close()


def test_single_query_methods_route_through_scatter(corpus, single_server):
    rng = np.random.default_rng(13)
    _o, query_perms, _d, _p = _make_records(1, rng)
    knn_body = (
        Writer()
        .i32_array(query_perms[0])
        .u32(25)
        .u32(0)
        .getvalue()
    )
    expected = _read_candidates(single_server.call("approx_knn", knn_body))
    cluster, router = _build_cluster(corpus, 3)
    try:
        reader = router.call("approx_knn", knn_body)
        got = _read_candidates(reader)
        reader.expect_end()
        assert got == expected
    finally:
        router.close()
        cluster.close()


def test_duplicate_oids_across_shards_are_suppressed(corpus):
    cluster, router = _build_cluster(corpus, 2)
    try:
        # plant the same record on BOTH shards directly (the transient
        # state a rebalance passes through between copy and delete)
        rng = np.random.default_rng(3)
        oids, perms, dists, payloads = _make_records(1, rng)
        oids = oids + 9999
        body = RecordBatch(oids, perms, dists, payloads).write_to(Writer())
        for rpc in router.shard_clients:
            rpc.call("insert_bulk", body.getvalue())
        query = _knn_body(perms, cand_size=600)
        lists = _read_candidate_lists(router.call("knn_batch", query))
        hits = [c.oid for c in lists[0] if c.oid == 9999]
        assert hits == [9999]  # seen once, not once per shard
    finally:
        router.close()
        cluster.close()


def test_insert_and_delete_route_by_top_pivot(corpus):
    cluster, router = _build_cluster(corpus, 4)
    try:
        total = sum(len(server.index) for server in cluster.servers)
        assert total == 500
        # per-shard record counts match the shard map's pivot ownership
        for shard, server in enumerate(cluster.servers):
            owned = set(router.shard_map.pivots_of(shard))
            tops = {
                int(record.ensure_permutation()[0])
                for cell in server.storage.cells()
                for record in server.storage.load(cell)
            }
            assert tops <= owned
        # healthz aggregates the cluster-wide record count
        health = router.call("healthz")
        assert health.string() == "ok"
        assert health.u64() == 500
    finally:
        router.close()
        cluster.close()


def test_cluster_stats_reconcile(corpus):
    cluster, router = _build_cluster(corpus, 4)
    try:
        per_shard, merged = router.cluster_stats()
        assert merged["shards"] == 4.0
        assert merged["records"] == 500.0
        assert merged["records"] == sum(
            stats["records"] for stats in per_shard.values()
        )
        assert merged["leaf_cells"] == sum(
            stats["leaf_cells"] for stats in per_shard.values()
        )
        # the stats RPC itself returns the merged view
        reader = router.call("stats")
        count = reader.u32()
        flat = {reader.string(): reader.f64() for _ in range(count)}
        assert flat["records"] == 500.0
    finally:
        router.close()
        cluster.close()


def test_rebalance_moves_pivots_with_zero_loss(corpus):
    cluster, router = _build_cluster(corpus, 2)
    try:
        rng = np.random.default_rng(17)
        _o, query_perms, _d, _p = _make_records(8, rng)
        query = _knn_body(query_perms, cand_size=50, max_cells=5)
        before = _read_candidate_lists(router.call("knn_batch", query))
        donor = router.shard_map.pivots_of(0)[0]
        source_size = len(cluster.servers[0].index)
        moved = router.rebalance([donor], target=1)
        assert moved > 0
        assert router.shard_map.shard_of(donor) == 1
        assert len(cluster.servers[0].index) == source_size - moved
        assert sum(len(server.index) for server in cluster.servers) == 500
        after = _read_candidate_lists(router.call("knn_batch", query))
        assert after == before  # bit-identical across the move
        # and the range is really gone from the source
        for cell in cluster.servers[0].storage.cells():
            for record in cluster.servers[0].storage.load(cell):
                assert int(record.ensure_permutation()[0]) != donor
    finally:
        router.close()
        cluster.close()


# ---------------------------------------------------------------------------
# shard loss


class _DeadChannel:
    """A channel whose peer is gone: every request fails."""

    bytes_sent = 0
    bytes_received = 0
    bytes_total = 0
    communication_time = 0.0
    requests = 0

    def request(self, payload, *, deadline=None):
        raise ChannelError("connection refused")

    def reset_accounting(self):
        pass

    def close(self):
        pass


def _router_with_dead_shard(cluster, *, allow_partial):
    factories = [cluster.channel_factory(0), _DeadChannel]
    return ShardRouter(
        cluster.shard_map,
        factories,
        resilient=True,
        policy=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
        allow_partial=allow_partial,
        sleep=lambda _s: None,
    )


def test_dead_shard_raises_typed_error_in_strict_mode(corpus):
    cluster = LocalShardCluster(
        N_PIVOTS, BUCKET, n_shards=2, latency=0.0, bandwidth=None
    )
    router = _router_with_dead_shard(cluster, allow_partial=False)
    try:
        rng = np.random.default_rng(5)
        _o, perms, _d, _p = _make_records(2, rng)
        with pytest.raises(ShardUnavailableError) as excinfo:
            router.call("knn_batch", _knn_body(perms, cand_size=10))
        assert excinfo.value.shard == 1
    finally:
        router.close()
        cluster.close()


def test_dead_shard_degrades_gracefully_when_partial_allowed(corpus):
    cluster = LocalShardCluster(
        N_PIVOTS, BUCKET, n_shards=2, latency=0.0, bandwidth=None
    )
    live_router = cluster.router(resilient=False)
    router = _router_with_dead_shard(cluster, allow_partial=True)
    try:
        # load only shard 0 (the live one) so degraded answers are
        # complete and comparable
        rng = np.random.default_rng(42)
        oids, perms, dists, payloads = _make_records(500, rng)
        keep = np.array(
            [
                cluster.shard_map.shard_of(int(p[0])) == 0
                for p in perms
            ]
        )
        idx = np.flatnonzero(keep)
        live_router.shard_clients[0].call(
            "insert_bulk",
            _insert_bulk_body(
                oids[idx],
                perms[idx],
                dists[idx],
                [payloads[i] for i in idx],
            ),
        )
        _o, query_perms, _d, _p = _make_records(4, rng)
        query = _knn_body(query_perms, cand_size=30)
        lists = _read_candidate_lists(router.call("knn_batch", query))
        assert router.shards_skipped == 1
        expected = _read_candidate_lists(
            live_router.call("knn_batch", query)
        )
        # shard 1 held nothing, so the degraded answer is the full one
        assert lists == expected
        # mutations never degrade
        with pytest.raises(ShardUnavailableError):
            router.call(
                "insert_bulk", _insert_bulk_body(*_make_records(10, rng))
            )
        # the skip count reaches the merged stats view
        _per, merged = router.cluster_stats()
        assert merged["shards_skipped"] >= 1.0
        assert merged["shards"] == 1.0
    finally:
        router.close()
        live_router.close()
        cluster.close()


def test_router_rejects_mismatched_factories():
    with pytest.raises(ProtocolError):
        ShardRouter(ShardMap.uniform(8, 2), [lambda: None])


def test_router_rejects_unroutable_method(corpus):
    cluster, router = _build_cluster(corpus, 2)
    try:
        with pytest.raises(ProtocolError):
            router.call("dump_cells_raw")
    finally:
        router.close()
        cluster.close()
