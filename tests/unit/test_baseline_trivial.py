"""Unit tests for repro.baselines.trivial."""

import numpy as np
import pytest

from repro.baselines.trivial import build_trivial
from repro.crypto.keys import SecretKey
from repro.exceptions import QueryError
from repro.metric.distances import L1Distance
from repro.metric.space import MetricSpace

from tests.conftest import brute_force_knn


@pytest.fixture
def trivial_pair(small_data, rng):
    key = SecretKey.generate(small_data, 2, rng=np.random.default_rng(0))
    space = MetricSpace(L1Distance(), 12)
    server, client = build_trivial(key, space)
    client.insert_many(range(len(small_data)), small_data)
    return server, client


class TestTrivial:
    def test_all_blobs_stored(self, trivial_pair, small_data):
        server, _client = trivial_pair
        assert len(server) == len(small_data)

    def test_knn_is_exact(self, trivial_pair, small_data, queries):
        _server, client = trivial_pair
        for q in queries[:3]:
            hits = client.knn_search(q, 10)
            assert [h.oid for h in hits] == brute_force_knn(small_data, q, 10)

    def test_range_is_exact(self, trivial_pair, small_data, queries):
        _server, client = trivial_pair
        q = queries[0]
        dists = np.abs(small_data - q).sum(axis=1)
        radius = float(np.sort(dists)[25])
        hits = client.range_search(q, radius)
        assert {h.oid for h in hits} == set(np.nonzero(dists <= radius)[0])

    def test_every_query_downloads_everything(
        self, trivial_pair, small_data, queries
    ):
        _server, client = trivial_pair
        client.reset_accounting()
        client.knn_search(queries[0], 1)
        report = client.report()
        # must at least carry one token per stored object
        token_size = 12 * 8 + 32
        assert report.communication_bytes >= len(small_data) * token_size

    def test_all_decryption_on_client(self, trivial_pair, queries):
        _server, client = trivial_pair
        client.reset_accounting()
        client.knn_search(queries[0], 5)
        report = client.report()
        assert report.decryption_time > 0.0
        assert report.distance_time > 0.0

    def test_invalid_parameters(self, trivial_pair, queries):
        _server, client = trivial_pair
        with pytest.raises(QueryError):
            client.knn_search(queries[0], 0)
        with pytest.raises(QueryError):
            client.range_search(queries[0], -1.0)

    def test_insert_mismatch_rejected(self, trivial_pair, small_data):
        _server, client = trivial_pair
        with pytest.raises(QueryError):
            client.insert_many([1], small_data[:2])
