"""Unit tests for repro.crypto.aes against the official FIPS-197 and
NIST SP 800-38A vectors."""

import numpy as np
import pytest

from repro.crypto.aes import (
    SBOX,
    INV_SBOX,
    AesKey,
    decrypt_block,
    decrypt_blocks,
    encrypt_block,
    encrypt_blocks,
)
from repro.exceptions import CryptoError, KeyError_

# FIPS-197 Appendix C known-answer vectors.
_PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")
_VECTORS = [
    (
        bytes.fromhex("000102030405060708090a0b0c0d0e0f"),
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        bytes.fromhex("000102030405060708090a0b0c0d0e0f1011121314151617"),
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        bytes.fromhex(
            "000102030405060708090a0b0c0d0e0f"
            "101112131415161718191a1b1c1d1e1f"
        ),
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


class TestSbox:
    def test_known_entries(self):
        # S(0x00)=0x63, S(0x01)=0x7c, S(0x53)=0xed, S(0xff)=0x16
        assert SBOX[0x00] == 0x63
        assert SBOX[0x01] == 0x7C
        assert SBOX[0x53] == 0xED
        assert SBOX[0xFF] == 0x16

    def test_sbox_is_a_permutation(self):
        assert sorted(SBOX.tolist()) == list(range(256))

    def test_inverse_sbox_inverts(self):
        values = np.arange(256, dtype=np.uint8)
        np.testing.assert_array_equal(INV_SBOX[SBOX[values]], values)


class TestKeySchedule:
    def test_fips_appendix_a_first_round_key(self):
        # FIPS-197 A.1: w4..w7 of the 128-bit expansion
        key = bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c")
        round_keys = AesKey(key).round_keys
        assert round_keys[1].tobytes().hex() == (
            "a0fafe1788542cb123a339392a6c7605"
        )

    def test_round_counts(self):
        assert AesKey(bytes(16)).rounds == 10
        assert AesKey(bytes(24)).rounds == 12
        assert AesKey(bytes(32)).rounds == 14

    def test_invalid_key_length_rejected(self):
        with pytest.raises(KeyError_):
            AesKey(bytes(15))

    def test_non_bytes_rejected(self):
        with pytest.raises(KeyError_):
            AesKey("0123456789abcdef")

    def test_repr_hides_key(self):
        key = AesKey(bytes(range(16)))
        assert "00" not in repr(key)


class TestBlockCipher:
    @pytest.mark.parametrize("key,expected", _VECTORS)
    def test_fips197_encrypt(self, key, expected):
        assert encrypt_block(AesKey(key), _PLAINTEXT).hex() == expected

    @pytest.mark.parametrize("key,expected", _VECTORS)
    def test_fips197_decrypt(self, key, expected):
        ct = bytes.fromhex(expected)
        assert decrypt_block(AesKey(key), ct) == _PLAINTEXT

    def test_sp800_38a_ecb_block(self):
        key = AesKey(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        pt = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        assert encrypt_block(key, pt).hex() == (
            "3ad77bb40d7a3660a89ecaf32466ef97"
        )

    def test_roundtrip_random_blocks(self, rng):
        key = AesKey(rng.integers(0, 256, 16, dtype=np.uint8).tobytes())
        for _ in range(20):
            block = rng.integers(0, 256, 16, dtype=np.uint8).tobytes()
            assert decrypt_block(key, encrypt_block(key, block)) == block

    def test_wrong_block_size_rejected(self):
        key = AesKey(bytes(16))
        with pytest.raises(CryptoError):
            encrypt_block(key, bytes(15))
        with pytest.raises(CryptoError):
            decrypt_block(key, bytes(17))


class TestVectorizedBlocks:
    def test_batch_matches_scalar(self, rng):
        key = AesKey(rng.integers(0, 256, 16, dtype=np.uint8).tobytes())
        blocks = rng.integers(0, 256, size=(40, 16), dtype=np.uint8)
        batch = encrypt_blocks(key, blocks)
        for i in range(40):
            assert batch[i].tobytes() == encrypt_block(
                key, blocks[i].tobytes()
            )

    def test_batch_decrypt_inverts(self, rng):
        key = AesKey(rng.integers(0, 256, 32, dtype=np.uint8).tobytes())
        blocks = rng.integers(0, 256, size=(25, 16), dtype=np.uint8)
        np.testing.assert_array_equal(
            decrypt_blocks(key, encrypt_blocks(key, blocks)), blocks
        )

    def test_wrong_width_rejected(self, rng):
        key = AesKey(bytes(16))
        with pytest.raises(CryptoError):
            encrypt_blocks(key, np.zeros((3, 15), dtype=np.uint8))

    def test_single_block_1d_input(self):
        key = AesKey(bytes(16))
        block = np.zeros(16, dtype=np.uint8)
        out = encrypt_blocks(key, block)
        assert out.shape == (16,)
