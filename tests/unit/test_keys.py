"""Unit tests for repro.crypto.keys (SecretKey)."""

import numpy as np
import pytest

from repro.crypto.keys import SecretKey
from repro.exceptions import KeyError_
from repro.metric.distances import L1Distance
from repro.metric.space import MetricSpace


class TestConstruction:
    def test_basic_fields(self, rng):
        pivots = rng.normal(size=(5, 3))
        key = SecretKey(pivots, bytes(16))
        assert key.n_pivots == 5
        assert key.dimension == 3

    def test_rejects_bad_pivots(self):
        with pytest.raises(KeyError_):
            SecretKey(np.zeros(5), bytes(16))
        with pytest.raises(KeyError_):
            SecretKey(np.zeros((0, 3)), bytes(16))

    def test_rejects_bad_cipher_key(self, rng):
        with pytest.raises(KeyError_):
            SecretKey(rng.normal(size=(3, 2)), bytes(10))

    def test_repr_hides_material(self, rng):
        key = SecretKey(rng.normal(size=(3, 2)), bytes(16))
        assert "0.0" not in repr(key)


class TestGenerate:
    def test_pivots_drawn_from_data(self, rng):
        data = rng.normal(size=(50, 4))
        key = SecretKey.generate(data, 6, rng=np.random.default_rng(1))
        for pivot in key.pivots:
            assert any(np.array_equal(pivot, row) for row in data)

    def test_deterministic_with_seed(self, rng):
        data = rng.normal(size=(50, 4))
        a = SecretKey.generate(data, 6, rng=np.random.default_rng(9))
        b = SecretKey.generate(data, 6, rng=np.random.default_rng(9))
        assert a == b

    def test_random_without_rng(self, rng):
        data = rng.normal(size=(50, 4))
        a = SecretKey.generate(data, 6)
        b = SecretKey.generate(data, 6)
        assert a.cipher_key != b.cipher_key  # os.urandom keys differ

    def test_key_bits(self, rng):
        data = rng.normal(size=(20, 4))
        for bits in (128, 192, 256):
            key = SecretKey.generate(
                data, 3, rng=np.random.default_rng(0), key_bits=bits
            )
            assert len(key.cipher_key) * 8 == bits
        with pytest.raises(KeyError_):
            SecretKey.generate(data, 3, key_bits=100)

    def test_maxmin_strategy(self, rng):
        data = rng.normal(size=(60, 4))
        space = MetricSpace(L1Distance(), 4)
        key = SecretKey.generate(
            data, 4, rng=np.random.default_rng(2), strategy="maxmin",
            space=space,
        )
        assert key.n_pivots == 4


class TestSerialization:
    def test_roundtrip(self, rng):
        key = SecretKey(rng.normal(size=(7, 5)), bytes(range(16)))
        restored = SecretKey.from_bytes(key.to_bytes())
        assert restored == key
        np.testing.assert_array_equal(restored.pivots, key.pivots)

    def test_roundtrip_256_bit(self, rng):
        key = SecretKey(rng.normal(size=(2, 3)), bytes(32))
        assert SecretKey.from_bytes(key.to_bytes()) == key

    def test_truncated_blob_rejected(self, rng):
        blob = SecretKey(rng.normal(size=(3, 2)), bytes(16)).to_bytes()
        with pytest.raises(KeyError_):
            SecretKey.from_bytes(blob[:-1])

    def test_bad_magic_rejected(self, rng):
        blob = bytearray(SecretKey(rng.normal(size=(3, 2)), bytes(16)).to_bytes())
        blob[0] ^= 0xFF
        with pytest.raises(KeyError_):
            SecretKey.from_bytes(bytes(blob))

    def test_restored_cipher_interoperates(self, rng):
        key = SecretKey(rng.normal(size=(3, 2)), bytes(range(16)))
        restored = SecretKey.from_bytes(key.to_bytes())
        token = key.cipher.encrypt(b"cross-key message")
        assert restored.cipher.decrypt(token) == b"cross-key message"


class TestEquality:
    def test_hashable(self, rng):
        pivots = rng.normal(size=(3, 2))
        a = SecretKey(pivots, bytes(16))
        b = SecretKey(pivots.copy(), bytes(16))
        assert hash(a) == hash(b)
        assert a == b

    def test_different_pivots_not_equal(self, rng):
        a = SecretKey(rng.normal(size=(3, 2)), bytes(16))
        b = SecretKey(rng.normal(size=(3, 2)), bytes(16))
        assert a != b
