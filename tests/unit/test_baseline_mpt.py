"""Unit tests for repro.baselines.mpt."""

import numpy as np
import pytest

from repro.baselines.mpt import build_mpt
from repro.crypto.cipher import AesCipher
from repro.exceptions import QueryError
from repro.metric.distances import L1Distance
from repro.metric.space import MetricSpace

from tests.conftest import brute_force_knn


@pytest.fixture
def mpt_pair(small_data, rng):
    cipher = AesCipher(bytes(range(16)))
    space = MetricSpace(L1Distance(), 12)
    references = small_data[rng.choice(len(small_data), 6, replace=False)]
    server, client = build_mpt(references, cipher, space)
    client.outsource(
        range(len(small_data)), small_data, rng=np.random.default_rng(1)
    )
    return server, client


class TestConstruction:
    def test_all_rows_stored(self, mpt_pair, small_data):
        server, _client = mpt_pair
        assert len(server) == len(small_data)

    def test_stored_distances_are_transformed(self, mpt_pair, small_data):
        """The server must never see a true reference distance."""
        server, client = mpt_pair
        space = MetricSpace(L1Distance(), 12)
        true_rows = np.stack(
            [
                space.d_batch(vector, client.references)
                for vector in small_data[:20]
            ]
        )
        stored_rows = np.stack(server._rows[:20])
        assert not np.allclose(stored_rows, true_rows)

    def test_order_preserved_in_storage(self, mpt_pair, small_data):
        """Transformed values must sort identically to true values."""
        server, client = mpt_pair
        space = MetricSpace(L1Distance(), 12)
        true_first = np.array(
            [
                space.d(vector, client.references[0])
                for vector in small_data[:50]
            ]
        )
        stored_first = np.array([row[0] for row in server._rows[:50]])
        np.testing.assert_array_equal(
            np.argsort(true_first, kind="stable"),
            np.argsort(stored_first, kind="stable"),
        )


class TestSearch:
    def test_range_is_exact(self, mpt_pair, small_data, queries):
        _server, client = mpt_pair
        for q in queries[:3]:
            dists = np.abs(small_data - q).sum(axis=1)
            radius = float(np.sort(dists)[12])
            hits = client.range_search(q, radius)
            assert {h.oid for h in hits} == set(
                np.nonzero(dists <= radius)[0]
            )

    def test_knn_is_exact(self, mpt_pair, small_data, queries):
        _server, client = mpt_pair
        for q in queries[:3]:
            hits = client.knn_search(q, 8)
            assert [h.oid for h in hits] == brute_force_knn(small_data, q, 8)

    def test_knn_uses_multiple_rounds(self, mpt_pair, queries):
        _server, client = mpt_pair
        client.reset_accounting()
        client.knn_search(queries[0], 10)
        assert client.report().extras["round_trips"] >= 1

    def test_filter_reduces_candidates(self, mpt_pair, small_data, queries):
        """For small radii the server must not return everything."""
        _server, client = mpt_pair
        q = queries[0]
        dists = np.abs(small_data - q).sum(axis=1)
        radius = float(np.sort(dists)[5])
        client.reset_accounting()
        client.range_search(q, radius)
        received = client.report().communication_bytes
        token_bytes = (12 * 8 + 32) * len(small_data)
        assert received < token_bytes  # strictly less than a full download

    def test_invalid_parameters(self, mpt_pair, queries):
        _server, client = mpt_pair
        with pytest.raises(QueryError):
            client.knn_search(queries[0], 0)
        with pytest.raises(QueryError):
            client.range_search(queries[0], -1.0)
