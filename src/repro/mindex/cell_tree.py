"""The dynamic Voronoi cell tree (Figure 3 of the paper).

Cells are identified by pivot-permutation prefixes. The tree starts as a
single leaf with the empty prefix and splits any leaf whose record count
exceeds the bucket capacity, partitioning its records by the next
permutation element — the recursive Voronoi partitioning of §4.1 carried
out purely on permutations.

Leaves additionally track, per prefix level, the ``[min, max]`` interval
of the stored objects' distance to that level's pivot. These intervals
power the range-pivot pruning constraint of the precise search and are
only maintained while every record carries distances (precise strategy).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.records import IndexedRecord
from repro.exceptions import IndexError_

__all__ = ["LeafCell", "InternalCell", "CellTree"]

Prefix = tuple[int, ...]


class LeafCell:
    """A leaf of the cell tree: metadata for one storage bucket."""

    __slots__ = ("prefix", "count", "intervals")

    def __init__(self, prefix: Prefix) -> None:
        self.prefix = prefix
        self.count = 0
        #: per-level [min, max] of d(o, p_level_pivot); None once any
        #: record without distances lands here.
        self.intervals: list[list[float]] | None = [
            [np.inf, -np.inf] for _ in prefix
        ]

    @property
    def level(self) -> int:
        """Depth of the leaf (== prefix length)."""
        return len(self.prefix)

    def note_record(self, record: IndexedRecord) -> None:
        """Update count and distance intervals for an arriving record."""
        self.count += 1
        if self.intervals is None:
            return
        if record.distances is None:
            self.intervals = None
            return
        for position, pivot in enumerate(self.prefix):
            value = float(record.distances[pivot])
            interval = self.intervals[position]
            if value < interval[0]:
                interval[0] = value
            if value > interval[1]:
                interval[1] = value

    def note_records(
        self,
        records: list[IndexedRecord],
        distances: np.ndarray | None = None,
    ) -> None:
        """Bulk :meth:`note_record`: count once, reduce intervals
        vectorized.

        ``distances`` may carry the records' pre-stacked
        ``(len(records), n_pivots)`` distance matrix; otherwise it is
        stacked here when every record has distances. The resulting
        intervals are identical to a per-record loop (min/max reductions
        are exact).
        """
        if not records:
            return
        self.count += len(records)
        if self.intervals is None:
            return
        if distances is None:
            if any(record.distances is None for record in records):
                self.intervals = None
                return
            distances = np.stack([record.distances for record in records])
        for position, pivot in enumerate(self.prefix):
            column = distances[:, pivot]
            low = float(column.min())
            high = float(column.max())
            interval = self.intervals[position]
            if low < interval[0]:
                interval[0] = low
            if high > interval[1]:
                interval[1] = high

    def rebuild_from(
        self,
        records: list[IndexedRecord],
        distances: np.ndarray | None = None,
    ) -> None:
        """Recompute count and intervals from scratch (vectorized)."""
        self.count = 0
        self.intervals = [[np.inf, -np.inf] for _ in self.prefix]
        self.note_records(records, distances)


class InternalCell:
    """An internal node: children keyed by the next permutation element."""

    __slots__ = ("prefix", "children")

    def __init__(self, prefix: Prefix) -> None:
        self.prefix = prefix
        self.children: dict[int, "InternalCell | LeafCell"] = {}

    @property
    def level(self) -> int:
        """Depth of the node (== prefix length)."""
        return len(self.prefix)


class CellTree:
    """Dynamic cell tree: leaf lookup, splitting and traversal."""

    def __init__(self, n_pivots: int, max_level: int) -> None:
        if n_pivots <= 0:
            raise IndexError_(f"n_pivots must be positive, got {n_pivots}")
        if not 1 <= max_level <= n_pivots:
            raise IndexError_(
                f"max_level must be in 1..{n_pivots}, got {max_level}"
            )
        self.n_pivots = n_pivots
        self.max_level = max_level
        self.root: InternalCell | LeafCell = LeafCell(())
        self._leaf_cache: list[LeafCell] | None = None

    # -- lookup -----------------------------------------------------------

    def locate_leaf(self, permutation: np.ndarray) -> LeafCell:
        """Walk the tree along a permutation to its leaf cell."""
        node = self.root
        while isinstance(node, InternalCell):
            pivot = int(permutation[node.level])
            child = node.children.get(pivot)
            if child is None:
                child = LeafCell(node.prefix + (pivot,))
                node.children[pivot] = child
                self._leaf_cache = None
            node = child
        return node

    def ensure_leaf(self, prefix: Prefix) -> LeafCell:
        """Return the leaf at exactly ``prefix``, materializing the path.

        Used when rebuilding the tree from a storage backend whose cell
        ids are permutation prefixes (after a server restart). Raises
        when the requested shape conflicts with existing structure —
        e.g. a leaf already stored at a proper prefix of ``prefix``.
        """
        if len(prefix) > self.max_level:
            raise IndexError_(
                f"prefix {prefix} deeper than max level {self.max_level}"
            )
        if not prefix:
            if not isinstance(self.root, LeafCell):
                raise IndexError_("root is already an internal cell")
            return self.root
        if isinstance(self.root, LeafCell):
            if self.root.count:
                raise IndexError_(
                    "cannot materialize below a non-empty root leaf"
                )
            self.root = InternalCell(())
            self._leaf_cache = None
        node: InternalCell = self.root
        for depth, pivot in enumerate(prefix):
            is_last = depth == len(prefix) - 1
            child = node.children.get(int(pivot))
            if child is None:
                child_prefix = node.prefix + (int(pivot),)
                child = (
                    LeafCell(child_prefix)
                    if is_last
                    else InternalCell(child_prefix)
                )
                node.children[int(pivot)] = child
                self._leaf_cache = None
            if is_last:
                if not isinstance(child, LeafCell):
                    raise IndexError_(
                        f"cell {prefix} conflicts with an internal node"
                    )
                return child
            if not isinstance(child, InternalCell):
                if child.count:
                    raise IndexError_(
                        f"cell {prefix} conflicts with non-empty leaf "
                        f"{child.prefix}"
                    )
                child = InternalCell(child.prefix)
                node.children[int(pivot)] = child
                self._leaf_cache = None
            node = child
        raise AssertionError("unreachable")  # pragma: no cover

    # -- splitting ----------------------------------------------------------

    def can_split(self, leaf: LeafCell) -> bool:
        """Whether the leaf may be partitioned one level deeper."""
        return leaf.level < self.max_level

    def split_into(
        self, leaf: LeafCell, pivots: "list[int] | np.ndarray"
    ) -> dict[int, LeafCell]:
        """Replace ``leaf`` with an internal cell carrying one child per
        pivot, without touching any records.

        The array-based bulk loader partitions records as index arrays
        and only needs the structural half of a split; callers are
        responsible for rebuilding each child's count/intervals once its
        final record group is known.
        """
        if not self.can_split(leaf):
            raise IndexError_(
                f"cell {leaf.prefix} at max level {self.max_level} "
                "cannot split"
            )
        internal = InternalCell(leaf.prefix)
        children: dict[int, LeafCell] = {}
        for pivot in pivots:
            child = LeafCell(leaf.prefix + (int(pivot),))
            internal.children[int(pivot)] = child
            children[int(pivot)] = child
        self._replace(leaf, internal)
        self._leaf_cache = None
        return children

    def split_leaf(
        self, leaf: LeafCell, records: list[IndexedRecord]
    ) -> dict[int, tuple[LeafCell, list[IndexedRecord]]]:
        """Replace ``leaf`` with an internal cell and partition records.

        Returns ``{pivot: (new_leaf, its_records)}``; the caller persists
        the groups in storage and removes the old cell.
        """
        groups: dict[int, list[IndexedRecord]] = {}
        for record in records:
            pivot = int(record.permutation[leaf.level])
            groups.setdefault(pivot, []).append(record)
        children = self.split_into(leaf, list(groups))
        result: dict[int, tuple[LeafCell, list[IndexedRecord]]] = {}
        for pivot, group in groups.items():
            child = children[pivot]
            child.rebuild_from(group)
            result[pivot] = (child, group)
        return result

    def _replace(
        self, old: LeafCell, new: InternalCell
    ) -> None:
        if self.root is old:
            self.root = new
            return
        node = self.root
        if not isinstance(node, InternalCell):
            raise IndexError_(f"cell {old.prefix} not found in tree")
        for position in range(len(old.prefix)):
            pivot = old.prefix[position]
            if position == len(old.prefix) - 1:
                if node.children.get(pivot) is not old:
                    raise IndexError_(f"cell {old.prefix} not found in tree")
                node.children[pivot] = new
                return
            child = node.children.get(pivot)
            if not isinstance(child, InternalCell):
                raise IndexError_(f"cell {old.prefix} not found in tree")
            node = child
        raise IndexError_(f"cell {old.prefix} not found in tree")

    # -- traversal ------------------------------------------------------------

    def leaves(self) -> list[LeafCell]:
        """All leaf cells (cached; invalidated on structural change)."""
        if self._leaf_cache is None:
            collected: list[LeafCell] = []
            stack: list[InternalCell | LeafCell] = [self.root]
            while stack:
                node = stack.pop()
                if isinstance(node, LeafCell):
                    collected.append(node)
                else:
                    stack.extend(node.children.values())
            collected.sort(key=lambda leaf: leaf.prefix)
            self._leaf_cache = collected
        return self._leaf_cache

    def iter_nodes(self) -> Iterator[InternalCell | LeafCell]:
        """Depth-first iteration over all nodes."""
        stack: list[InternalCell | LeafCell] = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if isinstance(node, InternalCell):
                stack.extend(node.children.values())

    @property
    def n_records(self) -> int:
        """Total records tracked across all leaves."""
        return sum(leaf.count for leaf in self.leaves())

    @property
    def depth(self) -> int:
        """Maximum leaf level currently present."""
        return max((leaf.level for leaf in self.leaves()), default=0)
