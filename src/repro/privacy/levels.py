"""The paper's privacy taxonomy (§2.3) as code.

Four levels, ordered by how much a compromised server can learn:

1. **NO_ENCRYPTION** — plaintext MS objects and index on the server.
2. **RAW_DATA_ENCRYPTION** — raw data encrypted, MS objects and index
   plaintext; the metric space leaks entirely.
3. **MS_OBJECTS_ENCRYPTION** — MS objects (and raw data) encrypted;
   the server keeps only auxiliary indexing information (permutations
   or pivot distances). The Encrypted M-Index lives here (§4.3).
4. **DISTRIBUTION_ENCRYPTION** — additionally hides the distance /
   distribution information (e.g. via order-preserving transformation);
   MPT and FDH belong here, and the paper names reaching this level for
   the M-Index as future work.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["PrivacyLevel", "SystemProfile", "classify_system", "KNOWN_SYSTEMS"]


class PrivacyLevel(enum.IntEnum):
    """§2.3's four levels; higher = less server knowledge."""

    NO_ENCRYPTION = 1
    RAW_DATA_ENCRYPTION = 2
    MS_OBJECTS_ENCRYPTION = 3
    DISTRIBUTION_ENCRYPTION = 4


@dataclass(frozen=True)
class SystemProfile:
    """What an outsourced search system exposes to its server."""

    name: str
    #: server stores plaintext MS objects
    plaintext_ms_objects: bool
    #: server stores plaintext raw data (or can reach it)
    plaintext_raw_data: bool
    #: server sees true distance values (object–pivot or inter-object)
    true_distances_visible: bool
    #: server sees ordering information (permutations, transformed
    #: distances) but not true distance values
    ordering_visible: bool = False


def classify_system(profile: SystemProfile) -> PrivacyLevel:
    """Place a system on the §2.3 taxonomy from its exposure profile."""
    if profile.plaintext_raw_data:
        return PrivacyLevel.NO_ENCRYPTION
    if profile.plaintext_ms_objects:
        return PrivacyLevel.RAW_DATA_ENCRYPTION
    if profile.true_distances_visible:
        return PrivacyLevel.MS_OBJECTS_ENCRYPTION
    if profile.ordering_visible:
        # Pivot permutations reveal proximity *ordering* but not the
        # distance distribution; the paper places the permutation-only
        # Encrypted M-Index at level 3 (§4.3) because ordering across
        # many objects still constrains the distribution.
        return PrivacyLevel.MS_OBJECTS_ENCRYPTION
    return PrivacyLevel.DISTRIBUTION_ENCRYPTION


#: Profiles of every system implemented in this repository.
KNOWN_SYSTEMS: dict[str, SystemProfile] = {
    "plain-mindex": SystemProfile(
        name="plain-mindex",
        plaintext_ms_objects=True,
        plaintext_raw_data=True,
        true_distances_visible=True,
    ),
    "raw-encrypted-mindex": SystemProfile(
        name="raw-encrypted-mindex",
        plaintext_ms_objects=True,
        plaintext_raw_data=False,
        true_distances_visible=True,
    ),
    "encrypted-mindex-precise": SystemProfile(
        name="encrypted-mindex-precise",
        plaintext_ms_objects=False,
        plaintext_raw_data=False,
        true_distances_visible=True,
    ),
    "encrypted-mindex-approximate": SystemProfile(
        name="encrypted-mindex-approximate",
        plaintext_ms_objects=False,
        plaintext_raw_data=False,
        true_distances_visible=False,
        ordering_visible=True,
    ),
    "ehi": SystemProfile(
        name="ehi",
        plaintext_ms_objects=False,
        plaintext_raw_data=False,
        true_distances_visible=False,
        ordering_visible=False,
    ),
    "mpt": SystemProfile(
        name="mpt",
        plaintext_ms_objects=False,
        plaintext_raw_data=False,
        true_distances_visible=False,
        ordering_visible=False,
    ),
    "fdh": SystemProfile(
        name="fdh",
        plaintext_ms_objects=False,
        plaintext_raw_data=False,
        true_distances_visible=False,
        ordering_visible=False,
    ),
    "trivial": SystemProfile(
        name="trivial",
        plaintext_ms_objects=False,
        plaintext_raw_data=False,
        true_distances_visible=False,
        ordering_visible=False,
    ),
}
