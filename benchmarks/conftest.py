"""Shared fixtures for the table-reproduction benchmarks.

Scaling note (documented in DESIGN.md/EXPERIMENTS.md): the CoPhIR
stand-in defaults to 10,000 records (the paper used 1M on a 2012
server farm); candidate-set sizes are scaled by the same factor, so
every |S_C| / |X| fraction of the paper is preserved. Override with
the ``REPRO_COPHIR_N`` / ``REPRO_QUERIES`` environment variables for
larger runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.datasets.registry import make_cophir, make_human, make_yeast

RESULTS_DIR = Path(__file__).parent / "results"

#: number of queries per sweep point (paper: 100; CoPhIR runs use fewer
#: by default to keep the pure-python AES volume manageable)
N_QUERIES_SMALL = int(os.environ.get("REPRO_QUERIES", "100"))
N_QUERIES_COPHIR = int(os.environ.get("REPRO_QUERIES_COPHIR", "30"))

#: CoPhIR stand-in cardinality (paper: 1,000,000)
COPHIR_N = int(os.environ.get("REPRO_COPHIR_N", "10000"))

#: paper candidate-set sweeps
YEAST_CAND_SIZES = [150, 300, 600, 1500]
#: paper CoPhIR sweep {500,1k,5k,10k,20k,50k} of 1M, as fractions of our
#: collection: {0.05%, 0.1%, 0.5%, 1%, 2%, 5%}
COPHIR_FRACTIONS = [0.0005, 0.001, 0.005, 0.01, 0.02, 0.05]
#: clamped below at k=30 — the paper's smallest point (500 of 1M) is
#: comfortably above k, but the scaled-down collection may not be
COPHIR_CAND_SIZES = sorted(
    {max(30, int(round(f * COPHIR_N))) for f in COPHIR_FRACTIONS}
)


def save_result(name: str, text: str) -> None:
    """Persist a rendered table under benchmarks/results and print it."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(scope="session")
def yeast():
    return make_yeast(n_queries=max(N_QUERIES_SMALL, 100))


@pytest.fixture(scope="session")
def human():
    return make_human(n_queries=max(N_QUERIES_SMALL, 100))


@pytest.fixture(scope="session")
def cophir():
    return make_cophir(
        n_records=COPHIR_N, n_queries=max(N_QUERIES_COPHIR, 30)
    )
