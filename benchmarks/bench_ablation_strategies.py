"""Ablation — the three server-side representations.

PRECISE vs TRANSFORMED vs APPROXIMATE on the same collection: what
does each strategy cost in server pruning power, candidate volume and
wall time, and what does each leak? This quantifies the §4.3/§6
trade-off the paper discusses qualitatively: the transformation layer
buys level-4 privacy at the price of the double-pivot pruning rule.
"""

import numpy as np
import pytest
from conftest import save_result

from repro.core.client import Strategy
from repro.evaluation.runner import run_encrypted_construction
from repro.evaluation.tables import format_matrix
from repro.mindex.index import RangeSearchStats
from repro.privacy.attacks import DistanceDistributionAttack


@pytest.fixture(scope="module")
def clouds(yeast):
    built = {}
    for strategy in Strategy:
        cloud, _ = run_encrypted_construction(
            yeast, strategy=strategy, seed=0
        )
        built[strategy] = cloud
    return built


def _server_view(cloud):
    records = []
    for cell in cloud.server.storage.cells():
        records.extend(cloud.server.storage.load(cell))
    return records


def test_ablation_range_pruning_power(clouds, yeast, benchmark):
    """Range-query server work: PRECISE prunes hardest, TRANSFORMED
    pays for privacy with more cell accesses, APPROXIMATE cannot serve
    range queries at all."""
    n_queries = 25
    queries = yeast.queries[:n_queries]
    rows = []
    measured = {}
    for strategy in (Strategy.PRECISE, Strategy.TRANSFORMED):
        cloud = clouds[strategy]
        client = cloud.new_client()
        client.reset_accounting()
        stats_total = RangeSearchStats()
        candidates = 0
        for q in queries:
            q_dists = client.space.d_batch(q, client.secret_key.pivots)
            radius = float(np.sort(q_dists)[2])  # a moderately small radius
            stats = RangeSearchStats()
            if strategy is Strategy.PRECISE:
                cands = cloud.server.index.range_search(
                    q_dists, radius, stats=stats
                )
            else:
                lows = np.asarray(
                    client.ope.encrypt(np.maximum(q_dists - radius, 0.0))
                )
                highs = np.asarray(client.ope.encrypt(q_dists + radius))
                cands = cloud.server.index.range_search_transformed(
                    lows, highs, stats=stats
                )
            candidates += len(cands)
            stats_total.cells_examined += stats.cells_examined
            stats_total.cells_accessed += stats.cells_accessed
            stats_total.records_scanned += stats.records_scanned
        measured[strategy] = (stats_total, candidates)
        rows.append(
            (
                strategy.value,
                [
                    f"{stats_total.cells_accessed / n_queries:.1f}",
                    f"{stats_total.records_scanned / n_queries:.1f}",
                    f"{candidates / n_queries:.1f}",
                ],
            )
        )
    rows.append((Strategy.APPROXIMATE.value, ["-", "-", "unsupported"]))
    text = format_matrix(
        "Ablation: range-query server work per strategy (YEAST, "
        "per-query averages)",
        ["cells accessed", "records scanned", "candidates"],
        rows,
        row_header="Strategy",
    )
    save_result("ablation_strategies_pruning", text)

    precise_stats, precise_cands = measured[Strategy.PRECISE]
    transformed_stats, transformed_cands = measured[Strategy.TRANSFORMED]
    # losing the double-pivot rule must never *help*
    assert (
        transformed_stats.cells_accessed >= precise_stats.cells_accessed
    )
    # but interval filtering keeps the candidate sets equal: both are
    # exactly the pivot-filter survivors
    assert transformed_cands == precise_cands

    # benchmark: one transformed range query
    cloud = clouds[Strategy.TRANSFORMED]
    client = cloud.new_client()
    q = queries[0]
    benchmark(lambda: client.range_search(q, 20.0))


def test_ablation_strategy_leakage(clouds, yeast, benchmark):
    """What the server view reveals per strategy."""
    rng = np.random.default_rng(0)
    idx = rng.choice(yeast.n_records, 400, replace=False)
    true_sample = np.array(
        [
            yeast.distance(yeast.vectors[i], yeast.vectors[j])
            for i, j in zip(idx[:200], idx[200:])
        ]
    )
    rows = []
    scores = {}
    for strategy in Strategy:
        view = _server_view(clouds[strategy])
        try:
            score = DistanceDistributionAttack(view).leakage_score(
                true_sample
            )
            leak = f"{score:.2f}"
        except Exception:
            score = 0.0
            leak = "blocked (no distances stored)"
        scores[strategy] = score
        rows.append((strategy.value, [leak]))
    text = format_matrix(
        "Ablation: distance-distribution leakage score per strategy "
        "(1.0 = full leak)",
        ["leakage"],
        rows,
        row_header="Strategy",
    )
    save_result("ablation_strategies_leakage", text)

    assert scores[Strategy.PRECISE] > 0.5
    assert scores[Strategy.TRANSFORMED] < scores[Strategy.PRECISE]
    assert scores[Strategy.APPROXIMATE] == 0.0

    # benchmark: running the attack itself against the precise view
    view = _server_view(clouds[Strategy.PRECISE])
    benchmark(
        lambda: DistanceDistributionAttack(view).leakage_score(true_sample)
    )
