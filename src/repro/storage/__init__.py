"""Bucket storage backends for M-Index leaf cells.

Table 2 of the paper configures *memory storage* for the small data sets
and *disk storage* for CoPhIR. Both backends store lists of
:class:`~repro.core.records.IndexedRecord` keyed by Voronoi-cell id and
account their I/O (bytes and operation counts) so the ablation benches
can compare them.
"""

from repro.storage.bucket import Bucket
from repro.storage.chunks import (
    DEFAULT_CHUNK_RAW_BYTES,
    FORMAT_CHUNKED,
    FORMAT_LEGACY,
    BlockCache,
)
from repro.storage.disk import DEFAULT_CACHE_BYTES, DiskStorage
from repro.storage.manifest import MANIFEST_NAME
from repro.storage.memory import MemoryStorage

__all__ = [
    "Bucket",
    "BlockCache",
    "DEFAULT_CACHE_BYTES",
    "DEFAULT_CHUNK_RAW_BYTES",
    "DiskStorage",
    "FORMAT_CHUNKED",
    "FORMAT_LEGACY",
    "MANIFEST_NAME",
    "MemoryStorage",
]
