"""Unit tests for repro.metric.filtering (triangle-inequality bounds)."""

import numpy as np
import pytest

from repro.exceptions import MetricError
from repro.metric.distances import L1Distance
from repro.metric.filtering import (
    pivot_filter_lower_bound,
    pivot_filter_lower_bounds,
    pivot_filter_upper_bound,
    pivot_filter_upper_bounds,
)


def _setup(rng, n_pivots=6, dim=5):
    pivots = rng.normal(size=(n_pivots, dim))
    q = rng.normal(size=dim)
    o = rng.normal(size=dim)
    d = L1Distance()
    q_dists = np.array([d(q, p) for p in pivots])
    o_dists = np.array([d(o, p) for p in pivots])
    return d(q, o), q_dists, o_dists


class TestBounds:
    def test_lower_bound_is_valid(self, rng):
        for _ in range(50):
            true, q_dists, o_dists = _setup(rng)
            assert pivot_filter_lower_bound(q_dists, o_dists) <= true + 1e-9

    def test_upper_bound_is_valid(self, rng):
        for _ in range(50):
            true, q_dists, o_dists = _setup(rng)
            assert pivot_filter_upper_bound(q_dists, o_dists) >= true - 1e-9

    def test_lower_never_exceeds_upper(self, rng):
        for _ in range(20):
            _true, q_dists, o_dists = _setup(rng)
            lo = pivot_filter_lower_bound(q_dists, o_dists)
            hi = pivot_filter_upper_bound(q_dists, o_dists)
            assert lo <= hi + 1e-12

    def test_exact_when_object_is_pivot(self, rng):
        d = L1Distance()
        pivots = rng.normal(size=(4, 3))
        q = rng.normal(size=3)
        o = pivots[2]
        q_dists = np.array([d(q, p) for p in pivots])
        o_dists = np.array([d(o, p) for p in pivots])
        true = d(q, o)
        assert pivot_filter_lower_bound(q_dists, o_dists) == pytest.approx(true)
        assert pivot_filter_upper_bound(q_dists, o_dists) == pytest.approx(true)

    def test_known_values(self):
        q = np.array([1.0, 5.0])
        o = np.array([4.0, 6.0])
        assert pivot_filter_lower_bound(q, o) == 3.0
        assert pivot_filter_upper_bound(q, o) == 5.0


class TestVectorizedBounds:
    def test_matrix_matches_scalar(self, rng):
        q_dists = np.abs(rng.normal(size=5))
        matrix = np.abs(rng.normal(size=(12, 5)))
        lows = pivot_filter_lower_bounds(q_dists, matrix)
        highs = pivot_filter_upper_bounds(q_dists, matrix)
        for i in range(12):
            assert lows[i] == pytest.approx(
                pivot_filter_lower_bound(q_dists, matrix[i])
            )
            assert highs[i] == pytest.approx(
                pivot_filter_upper_bound(q_dists, matrix[i])
            )

    def test_single_row_input(self, rng):
        q_dists = np.abs(rng.normal(size=4))
        row = np.abs(rng.normal(size=4))
        assert pivot_filter_lower_bounds(q_dists, row).shape == (1,)


class TestValidation:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(MetricError):
            pivot_filter_lower_bound(np.zeros(3), np.zeros(4))

    def test_empty_rejected(self):
        with pytest.raises(MetricError):
            pivot_filter_lower_bound(np.array([]), np.array([]))

    def test_matrix_shape_mismatch_rejected(self):
        with pytest.raises(MetricError):
            pivot_filter_lower_bounds(np.zeros(3), np.zeros((5, 4)))
