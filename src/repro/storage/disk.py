"""File-backed bucket storage (Table 2: CoPhIR uses disk storage).

Each Voronoi cell is one file of concatenated length-prefixed record
encodings under a storage directory. A small in-memory catalog maps cell
ids to file names and record counts, so existence checks and size
queries never touch the disk.
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
from pathlib import Path
from typing import Hashable, Iterator, Mapping

from repro.core.records import IndexedRecord
from repro.exceptions import StorageError

__all__ = ["DiskStorage"]

_LEN = struct.Struct("<I")


class DiskStorage:
    """One-file-per-cell disk storage with I/O accounting.

    Counter updates are mutex-guarded so concurrent search handlers
    (one reader thread per query of a batch) keep the accounting exact.
    """

    def __init__(self, directory: str | os.PathLike) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._catalog: dict[Hashable, tuple[str, int]] = {}
        self._accounting = threading.Lock()
        self.bytes_written = 0
        self.bytes_read = 0
        self.reads = 0
        self.writes = 0

    # -- core interface (mirrors MemoryStorage) -------------------------

    def save(self, cell_id: Hashable, records: list[IndexedRecord]) -> None:
        """Store (replace) the record list of a cell."""
        name = self._file_name(cell_id)
        blob = b"".join(self._frame(r) for r in records)
        (self._dir / name).write_bytes(blob)
        self._catalog[cell_id] = (name, len(records))
        with self._accounting:
            self.bytes_written += len(blob)
            self.writes += 1

    def save_many(
        self, cells: Mapping[Hashable, list[IndexedRecord]]
    ) -> None:
        """Store (replace) several cells in one call.

        Each cell is still one file, so one physical write is charged
        per cell — identical to a loop of :meth:`save` calls (which is
        exactly what this is; the bulk win on this path comes from the
        loader touching every cell once, not from the storage layer).
        """
        for cell_id, records in cells.items():
            self.save(cell_id, records)

    def append(self, cell_id: Hashable, record: IndexedRecord) -> None:
        """Append one record to a cell file, creating it if missing."""
        name, count = self._catalog.get(cell_id, (self._file_name(cell_id), 0))
        frame = self._frame(record)
        with open(self._dir / name, "ab") as fh:
            fh.write(frame)
        self._catalog[cell_id] = (name, count + 1)
        with self._accounting:
            self.bytes_written += len(frame)
            self.writes += 1

    def append_many(
        self, cell_id: Hashable, records: list[IndexedRecord]
    ) -> None:
        """Append a group of records to a cell file in one write.

        The whole group is framed into one buffer and lands through a
        single file open + write, charged as one physical write — the
        bulk-insert path's amortization over per-record :meth:`append`.
        """
        if not records:
            return
        name, count = self._catalog.get(cell_id, (self._file_name(cell_id), 0))
        blob = b"".join(self._frame(r) for r in records)
        with open(self._dir / name, "ab") as fh:
            fh.write(blob)
        self._catalog[cell_id] = (name, count + len(records))
        with self._accounting:
            self.bytes_written += len(blob)
            self.writes += 1

    def load(self, cell_id: Hashable) -> list[IndexedRecord]:
        """Read back the records of a cell (empty list if absent)."""
        entry = self._catalog.get(cell_id)
        if entry is None:
            return []
        name, _count = entry
        blob = (self._dir / name).read_bytes()
        with self._accounting:
            self.bytes_read += len(blob)
            self.reads += 1
        return list(self._parse(blob))

    def delete(self, cell_id: Hashable) -> None:
        """Remove a cell and its file."""
        entry = self._catalog.pop(cell_id, None)
        if entry is None:
            raise StorageError(f"cell {cell_id!r} does not exist")
        path = self._dir / entry[0]
        try:
            path.unlink()
        except FileNotFoundError as exc:
            raise StorageError(f"cell file missing for {cell_id!r}") from exc

    def cell_size(self, cell_id: Hashable) -> int:
        """Number of records in a cell (from the catalog, no I/O)."""
        entry = self._catalog.get(cell_id)
        return 0 if entry is None else entry[1]

    def cells(self) -> Iterator[Hashable]:
        """Iterate over existing cell ids."""
        return iter(self._catalog.keys())

    def __len__(self) -> int:
        """Total number of stored records."""
        return sum(count for _name, count in self._catalog.values())

    def reset_accounting(self) -> None:
        """Zero the I/O counters."""
        self.bytes_written = 0
        self.bytes_read = 0
        self.reads = 0
        self.writes = 0

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _frame(record: IndexedRecord) -> bytes:
        blob = record.to_bytes()
        return _LEN.pack(len(blob)) + blob

    @staticmethod
    def _parse(blob: bytes) -> Iterator[IndexedRecord]:
        offset = 0
        total = len(blob)
        while offset < total:
            if offset + _LEN.size > total:
                raise StorageError("cell file truncated (frame header)")
            (length,) = _LEN.unpack_from(blob, offset)
            offset += _LEN.size
            if offset + length > total:
                raise StorageError("cell file truncated (frame body)")
            yield IndexedRecord.from_bytes(blob[offset : offset + length])
            offset += length

    @staticmethod
    def _file_name(cell_id: Hashable) -> str:
        digest = hashlib.sha1(repr(cell_id).encode("utf-8")).hexdigest()[:24]
        return f"cell_{digest}.bin"
