"""Unit tests for repro.crypto.cipher (authenticated AES-CTR)."""

import itertools

import pytest

from repro.crypto.cipher import AesCipher
from repro.exceptions import AuthenticationError, CryptoError, KeyError_


def _counting_nonces():
    counter = itertools.count()
    return lambda: next(counter).to_bytes(16, "big")


class TestConstruction:
    def test_accepts_standard_key_sizes(self):
        for size in (16, 24, 32):
            AesCipher(bytes(size))

    def test_rejects_other_key_sizes(self):
        with pytest.raises(KeyError_):
            AesCipher(bytes(20))

    def test_rejects_non_bytes_key(self):
        with pytest.raises(KeyError_):
            AesCipher("not-bytes" * 2)

    def test_repr_hides_key(self):
        assert "00" not in repr(AesCipher(bytes(16)))

    def test_equality_by_key(self):
        assert AesCipher(bytes(16)) == AesCipher(bytes(16))
        assert AesCipher(bytes(16)) != AesCipher(bytes([1] * 16))


class TestRoundtrip:
    def test_roundtrip_various_lengths(self):
        cipher = AesCipher(bytes(range(16)))
        for length in (0, 1, 15, 16, 17, 100, 1000):
            message = bytes(range(256)) * (length // 256 + 1)
            message = message[:length]
            assert cipher.decrypt(cipher.encrypt(message)) == message

    def test_token_size_accounting(self):
        cipher = AesCipher(bytes(16))
        token = cipher.encrypt(b"x" * 123)
        assert len(token) == cipher.token_size(123)
        assert cipher.overhead == 32

    def test_fresh_nonce_each_message(self):
        cipher = AesCipher(bytes(16))
        t1 = cipher.encrypt(b"same message")
        t2 = cipher.encrypt(b"same message")
        assert t1 != t2  # random nonce -> distinct ciphertexts

    def test_deterministic_with_injected_nonces(self):
        c1 = AesCipher(bytes(16), nonce_factory=_counting_nonces())
        c2 = AesCipher(bytes(16), nonce_factory=_counting_nonces())
        assert c1.encrypt(b"hello") == c2.encrypt(b"hello")


class TestAuthentication:
    def test_tampered_ciphertext_rejected(self):
        cipher = AesCipher(bytes(16))
        token = bytearray(cipher.encrypt(b"attack at dawn"))
        token[20] ^= 0x01
        with pytest.raises(AuthenticationError):
            cipher.decrypt(bytes(token))

    def test_tampered_nonce_rejected(self):
        cipher = AesCipher(bytes(16))
        token = bytearray(cipher.encrypt(b"attack at dawn"))
        token[0] ^= 0x01
        with pytest.raises(AuthenticationError):
            cipher.decrypt(bytes(token))

    def test_tampered_tag_rejected(self):
        cipher = AesCipher(bytes(16))
        token = bytearray(cipher.encrypt(b"attack at dawn"))
        token[-1] ^= 0x01
        with pytest.raises(AuthenticationError):
            cipher.decrypt(bytes(token))

    def test_wrong_key_rejected(self):
        token = AesCipher(bytes(16)).encrypt(b"secret")
        with pytest.raises(AuthenticationError):
            AesCipher(bytes([9] * 16)).decrypt(token)

    def test_truncated_token_rejected(self):
        cipher = AesCipher(bytes(16))
        with pytest.raises(AuthenticationError):
            cipher.decrypt(b"too-short")

    def test_non_bytes_rejected(self):
        cipher = AesCipher(bytes(16))
        with pytest.raises(CryptoError):
            cipher.encrypt("string")
        with pytest.raises(CryptoError):
            cipher.decrypt(12345)


class TestBatchApis:
    def test_encrypt_many_matches_decrypt(self):
        cipher = AesCipher(bytes(range(16)))
        messages = [b"a" * n for n in (0, 1, 16, 33, 500)]
        tokens = cipher.encrypt_many(messages)
        assert cipher.decrypt_many(tokens) == messages

    def test_batch_and_single_interoperate(self):
        cipher = AesCipher(bytes(range(16)))
        messages = [b"msg-%d" % i for i in range(10)]
        batch_tokens = cipher.encrypt_many(messages)
        for token, message in zip(batch_tokens, messages):
            assert cipher.decrypt(token) == message
        single_tokens = [cipher.encrypt(m) for m in messages]
        assert cipher.decrypt_many(single_tokens) == messages

    def test_batch_rejects_any_tampering(self):
        cipher = AesCipher(bytes(16))
        tokens = cipher.encrypt_many([b"one", b"two", b"three"])
        tampered = list(tokens)
        broken = bytearray(tampered[1])
        broken[18] ^= 0xFF
        tampered[1] = bytes(broken)
        with pytest.raises(AuthenticationError):
            cipher.decrypt_many(tampered)

    def test_empty_batch(self):
        cipher = AesCipher(bytes(16))
        assert cipher.encrypt_many([]) == []
        assert cipher.decrypt_many([]) == []

    def test_token_size_validation(self):
        cipher = AesCipher(bytes(16))
        with pytest.raises(CryptoError):
            cipher.token_size(-1)

    def test_encrypt_many_identical_to_per_message_loop(self):
        """The packed single-pass batch equals the one-at-a-time loop.

        With the same injected nonce sequence, encrypt_many's packed
        buffer (one encrypt_blocks call, one gathered XOR) must produce
        byte-for-byte the tokens of a per-plaintext encrypt loop —
        including empty, sub-block, exact-block and multi-block sizes.
        """
        messages = [
            b"",
            b"x",
            b"fifteen bytes..",
            b"exactly 16 byte!",
            b"q" * 17,
            bytes(range(256)) * 3,
            b"",
            b"tail",
        ]
        batch = AesCipher(
            bytes(range(16)), nonce_factory=_counting_nonces()
        ).encrypt_many(messages)
        loop_cipher = AesCipher(
            bytes(range(16)), nonce_factory=_counting_nonces()
        )
        loop = [loop_cipher.encrypt(m) for m in messages]
        assert batch == loop

    def test_ctr_transform_many_identical_to_loop(self):
        from repro.crypto.aes import AesKey
        from repro.crypto.modes import ctr_transform, ctr_transform_many

        key = AesKey(bytes(range(32)))
        nonces = [n.to_bytes(16, "big") for n in (7, 2**64 - 1, 0, 123)]
        datas = [b"", b"abc", b"z" * 16, b"packed" * 40]
        batch = ctr_transform_many(key, nonces, datas)
        loop = [
            ctr_transform(key, nonce, data)
            for nonce, data in zip(nonces, datas)
        ]
        assert batch == loop
